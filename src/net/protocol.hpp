// Length-prefixed binary wire protocol over the KV store — the serving
// front end's frame vocabulary.
//
// Every frame is  u32-LE body length | body , body <= kMaxFrame.  Request
// bodies open with an opcode byte; response bodies echo the opcode and add
// a status byte, so a pipelined client can always re-associate responses
// without trusting its own bookkeeping (and a desynced stream is detected
// instead of silently mis-paired).  Integers are little-endian, fixed
// width; no varints, no alignment games — the codec must be boring because
// the conformance story depends on the *execution*, not the encoding.
//
// Request payloads:
//   HELLO      u16 major, u16 minor, u32 feature bitmap (kFeat*) — optional
//              versioned handshake, sent first on a connection.  A server
//              accepts equal majors (minor skew is fine: minors only add
//              frames) and answers ok with its own version + features; a
//              mismatched major gets status=version_mismatch carrying the
//              server's version so the client can report WHAT to upgrade
//              to, then the connection is closed.  Servers running with
//              require_hello accept nothing before the handshake.
//   GET        i64 key
//   PUT        i64 key, i64 value        (value should be kv::value_of form)
//   INSERT     i64 key, i64 value        (same execution as PUT; tallied
//                                         separately, fresh-key convention)
//   SCAN       u32 shard                 (privatize-scan, plain read path)
//   RMW        i64 key, i64 delta        (form-preserving payload bump)
//   SNAP_READ  i64 key                   (plain read of the published
//                                         snapshot — the hot-key fast path)
//   FENCE      (empty)                   (flush batch + whole-store quiesce)
//   BATCH      u16 count, then count sub-requests (batchable opcodes only:
//              GET/PUT/INSERT/RMW; nesting rejected)
//
// Response payloads (after opcode + status):
//   HELLO      ok → u16 major, u16 minor, u32 features (the server's)
//              version_mismatch → same payload (the one non-ok response
//              that carries a body: the server's version IS the error
//              detail)
//   GET        ok → i64 value            not_found → empty
//   PUT/INSERT ok → u8 fresh (1 = new key)
//   SCAN       ok → u64 keys, i64 value_sum, u8 privatized
//   RMW        ok → i64 new value        not_found → empty
//   SNAP_READ  ok → i64 value            not_found → empty (not in snapshot)
//   FENCE      ok, empty
//   BATCH      u16 count, then count sub-responses
//   GET/PUT/INSERT/RMW with status=moved → u64 routing epoch (the second
//              non-ok response with a body: a live migration re-homed the
//              key, the op did not run, and the epoch lets the client see
//              the routing state advance across its retry)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mtx::net {

enum class OpCode : std::uint8_t {
  get = 1,
  put = 2,
  insert = 3,
  scan = 4,
  rmw = 5,
  snap_read = 6,
  fence = 7,
  batch = 8,
  hello = 9,
};

enum class Status : std::uint8_t {
  ok = 0,
  not_found = 1,
  error = 2,
  version_mismatch = 3,  // HELLO only; payload = the server's version
  moved = 4,             // keyed table ops (GET/PUT/INSERT/RMW, standalone or
                         // in a BATCH): a live shard migration re-homed the
                         // key between routing and execution.  Payload = the
                         // server's current routing epoch (u64); the op did
                         // NOT run — retry it (the retry routes freshly).
};

// Protocol version spoken by this codec.  Majors gate compatibility
// (frame layouts may differ across majors); minors only ever ADD opcodes,
// so any equal-major peers interoperate.
constexpr std::uint16_t kProtoMajor = 1;
constexpr std::uint16_t kProtoMinor = 0;

// HELLO feature bitmap: what the peer is prepared to use (client) or
// serve (server).  Advisory — a server never rejects on features, it just
// advertises its own set back.
constexpr std::uint32_t kFeatBatching = 1u << 0;   // BATCH frames
constexpr std::uint32_t kFeatSnapRead = 1u << 1;   // SNAP_READ fast path
constexpr std::uint32_t kServerFeatures = kFeatBatching | kFeatSnapRead;

// Oversized-frame rejection bound: anything claiming a longer body is a
// protocol violation, not a request to buffer unbounded attacker-controlled
// input.  Generous for real frames (a max BATCH is ~4.3 KiB).
constexpr std::size_t kMaxFrame = 1u << 16;
constexpr std::size_t kMaxBatchOps = 256;

struct Request {
  OpCode op = OpCode::get;
  std::int64_t key = 0;
  std::int64_t arg = 0;       // PUT/INSERT value; RMW delta
  std::uint32_t shard = 0;    // SCAN
  std::uint16_t major = 0;    // HELLO
  std::uint16_t minor = 0;    // HELLO
  std::uint32_t features = 0; // HELLO (kFeat* bitmap)
  std::vector<Request> sub;   // BATCH (one level deep)
};

struct Response {
  OpCode op = OpCode::get;
  Status status = Status::ok;
  std::int64_t value = 0;     // GET/RMW/SNAP_READ value; SCAN value_sum
  std::uint64_t count = 0;    // SCAN keys
  std::uint8_t flag = 0;      // PUT/INSERT fresh; SCAN privatized
  std::uint16_t major = 0;    // HELLO (the server's version — also on
  std::uint16_t minor = 0;    //        version_mismatch)
  std::uint32_t features = 0; // HELLO (the server's kFeat* bitmap)
  std::uint64_t epoch = 0;    // moved: the server's current routing epoch
  std::vector<Response> sub;  // BATCH
};

enum class Decode {
  ok,         // one frame decoded, *consumed advanced past it
  need_more,  // buffer holds a frame prefix; read more bytes and retry
  bad_frame,  // protocol violation — close the connection
};

// Append one framed request/response to `out`.
void encode_request(const Request& req, std::vector<std::uint8_t>& out);
void encode_response(const Response& resp, std::vector<std::uint8_t>& out);

// Decode the frame at data[0..len); on ok, *consumed is the total frame
// size (prefix included).  Rejects bodies over kMaxFrame, unknown opcodes,
// trailing bytes inside a frame, and nested/oversized batches.
Decode decode_request(const std::uint8_t* data, std::size_t len, Request* out,
                      std::size_t* consumed);
Decode decode_response(const std::uint8_t* data, std::size_t len,
                       Response* out, std::size_t* consumed);

}  // namespace mtx::net
