// Non-blocking epoll serving front end over KvStore.
//
// One thread owns everything: accept, socket I/O, decode, and op execution
// (call run() from a dedicated thread; stop() from any other).  Requests
// pipeline per connection — the loop drains each readable socket, decodes
// every complete frame, and feeds them through the connection's
// BatchExecutor, which coalesces same-shard runs into single transactions
// (see net/batch.hpp for the flush rules).  Responses are written back in
// submission order; a connection that can't take them immediately parks on
// EPOLLOUT.
//
// The single op-execution thread is a feature, not a shortcut:
//   - it is the quiet point the hot-key snapshot REFRESH policy needs —
//     every snap_refresh_every requests the loop re-runs the publication
//     protocol (KvStore::refresh_snapshot) between requests, when no
//     transaction or plain snapshot read can be in flight;
//   - it makes streaming conformance a one-producer pipeline: with
//     opts.stream on, the loop thread records every transactional and
//     plain access it performs into a lock-free ring, marks an epoch every
//     stream_epoch_ops requests, and record::StreamConformance seals and
//     judges segments of REAL served traffic on checker threads while the
//     server keeps serving.  The stream opens with a synthetic state-carry
//     replay (the preloaded store), exactly like the in-process driver's
//     always-on level.
//
// Serving semantics note: snapshot reads (SNAP_READ) serve the published
// frozen values — stale by design between refreshes, but always
// key-consistent (kv::value_form_ok holds for every served value).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/batch.hpp"
#include "stm/backend.hpp"

namespace mtx::net {

struct ServerOptions {
  std::uint16_t port = 0;  // 0 = kernel-assigned; Server::port() reports it
  std::size_t shards = 8;
  std::size_t preload_keys = 1024;  // keys 0..N-1 preloaded as value_of(k, 0)
  std::size_t snap_keys = 16;  // hottest ranks published into the snapshot
  std::size_t max_batch = 16;  // per-connection run cap; 1 = unbatched
  // Re-publish the hot set's current values every N requests (0 = never):
  // the refresh runs between requests, the single-thread quiet point.
  std::size_t snap_refresh_every = 0;

  // Streaming conformance while serving.
  bool stream = false;
  std::size_t stream_ring_capacity = 1u << 15;
  std::size_t stream_checkers = 1;
  std::size_t stream_epoch_ops = 512;  // requests per sealed segment
  std::size_t stream_window_min_events = 64;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t bad_frames = 0;  // protocol violations (connection dropped)
  std::uint64_t frames = 0;      // request frames decoded
  std::uint64_t snap_refreshes = 0;
  BatchExecutor::Stats batch;  // aggregated across connections

  // Streaming verdicts (valid after run() returns; stream mode only).
  bool streamed = false;
  std::size_t segments = 0;
  std::size_t windows = 0;
  std::size_t nonconformant = 0;
  std::uint64_t ring_dropped = 0;
  bool overflow = false;
  std::size_t max_backlog = 0;

  bool ok() const {
    return bad_frames == 0 && nonconformant == 0 && !overflow &&
           ring_dropped == 0;
  }
};

class Server {
 public:
  // Binds and listens on 127.0.0.1 immediately (so callers may connect
  // before run() starts); throws std::runtime_error on socket failure.
  Server(stm::StmBackend& stm, const ServerOptions& opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }
  kv::KvStore& store() { return *store_; }

  // Event loop; blocks until stop().  Call from a dedicated thread.
  void run();
  // Thread-safe, idempotent shutdown request.
  void stop();

  // Valid after run() returns.
  const ServerStats& stats() const { return stats_; }

 private:
  struct Conn;
  struct StreamState;

  void handle_accept();
  // Returns false when the connection must be closed.
  bool handle_readable(Conn& c);
  bool flush_writes(Conn& c);
  void close_conn(std::size_t idx);
  void update_epoll(Conn& c);
  void maybe_refresh_snapshot();
  void maybe_mark_epoch();

  stm::StmBackend& stm_;
  ServerOptions opt_;
  std::unique_ptr<kv::KvStore> store_;
  std::vector<std::int64_t> snap_keys_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() pokes the epoll_wait
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t requests_since_refresh_ = 0;
  std::uint64_t requests_since_epoch_ = 0;
  std::uint64_t next_epoch_ = 0;
  std::unique_ptr<StreamState> stream_;
  ServerStats stats_;
};

}  // namespace mtx::net
