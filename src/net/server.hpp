// Multi-reactor epoll serving front end over KvStore.
//
// One acceptor thread owns the listening socket and deals new connections
// round-robin to N reactors (ServerConfig::reactors.count).  Each reactor
// is a single-threaded epoll event loop that OWNS a disjoint slice of the
// store's shards (ServerConfig::owner_of), holding kv::ShardHandle
// capabilities for exactly that slice — reactor code cannot address a
// shard it doesn't own, by construction.
//
// Shard-affine execution: a connection's pipelined requests are coalesced
// into same-shard Runs (net/batch.hpp flush rules).  A run on an owned
// shard executes inline on the reactor thread, one flag-checked
// transaction per run.  A run on a foreign shard is handed off INTACT to
// its owner through a lock-free SPSC mailbox (one ring per directed
// reactor pair, the record::EventRing design generalized in
// substrate/spsc.hpp), executed on the owner's thread, and its responses
// returned through the reverse ring.  Per-connection responses are
// released strictly in submission order: a deque of pending response
// slots holds results back until everything ahead of them has resolved,
// so cross-shard traffic batches — and answers — exactly like local
// traffic, just later.
//
// The reactor thread is the quiet point for ITS shards only:
//   - hot-key snapshot refresh (reactors.snap_refresh_every) re-runs the
//     publication protocol per owned shard between requests via the SCOPED
//     ShardHandle::refresh_snapshot — retract, per-domain fence, rewrite,
//     republish — never a whole-store fence on the hot path.  The contract
//     holds because every mutation and snapshot read of an owned shard
//     executes on the owning reactor's thread.
//   - an explicit FENCE request is the exception that proves the rule: it
//     parks in the connection's pending queue until everything submitted
//     before it has resolved (cross-shard included), then runs one
//     whole-store quiesce on the origin reactor.
//
// Streaming conformance is per-reactor: each reactor records its own
// transactional and plain accesses into its own ring, marks epochs on its
// own cadence (stream.epoch_ops executed requests), and a per-reactor
// record::StreamConformance seals and judges segments over the reactor's
// owned domain set while serving continues.  Ownership makes the traces
// disjoint — no cross-reactor reads-from can exist — so N per-reactor
// verdicts carry exactly the evidence of the single-reactor verdict,
// byte-identically (pinned in tests/test_net.cpp).  Each stream opens with
// a synthetic state-carry replay of the reactor's own shards, and every
// segment re-runs the per-shard publication handoff (snapshot_attach) just
// like the in-process driver's per-round re-attach.
//
// Serving semantics note: snapshot reads (SNAP_READ) serve the published
// frozen values — stale by design between refreshes, but always
// key-consistent (kv::value_form_ok holds for every served value).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/batch.hpp"
#include "net/config.hpp"
#include "stm/backend.hpp"

namespace mtx::net {

struct ServerStats {
  std::size_t reactors = 0;      // event loops the server ran
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t bad_frames = 0;  // protocol violations (connection dropped)
  std::uint64_t frames = 0;      // request frames decoded
  std::uint64_t snap_refreshes = 0;  // per-shard scoped refreshes run
  std::uint64_t handoffs = 0;    // cross-reactor mailbox shipments
  std::uint64_t hellos = 0;      // handshakes accepted
  std::uint64_t hello_rejects = 0;  // version_mismatch responses sent
  std::uint64_t moved = 0;       // Status::moved responses sent (live
                                 // migration bounced a stale-routed op)
  std::uint64_t migrations = 0;  // scripted migrations performed
  std::uint64_t keys_migrated = 0;
  std::uint64_t routing_epoch = 0;  // store's routing epoch at shutdown
  BatchStats batch;              // aggregated across connections

  // Streaming verdicts (valid after run() returns; stream mode only).
  // Totals are summed across reactors; stream_verdicts holds each
  // reactor's merged ConformanceReport::verdict() string — with ownership
  // the per-reactor verdicts are byte-identical to the single-reactor one.
  bool streamed = false;
  std::size_t segments = 0;
  std::size_t windows = 0;
  std::size_t nonconformant = 0;
  std::uint64_t ring_dropped = 0;
  bool overflow = false;
  std::size_t max_backlog = 0;
  std::vector<std::string> stream_verdicts;  // one per reactor

  bool ok() const {
    return bad_frames == 0 && nonconformant == 0 && !overflow &&
           ring_dropped == 0;
  }
};

class Server {
 public:
  // Binds and listens on 127.0.0.1 immediately (so callers may connect
  // before run() starts).  Throws std::invalid_argument when
  // cfg.validate() rejects the configuration, std::runtime_error on
  // socket failure.
  Server(stm::StmBackend& stm, const ServerConfig& cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }
  kv::KvStore& store() { return *store_; }
  const ServerConfig& config() const { return cfg_; }

  // Acceptor loop; spawns the reactor threads, blocks until stop(), joins
  // them.  Call from a dedicated thread.
  void run();
  // Thread-safe, idempotent shutdown request.
  void stop();

  // Valid after run() returns.
  const ServerStats& stats() const { return stats_; }

 private:
  struct Reactor;  // the per-core event loop (net/server.cpp)

  void reactor_main(Reactor& r);

  stm::StmBackend& stm_;
  ServerConfig cfg_;
  std::unique_ptr<kv::KvStore> store_;
  std::unique_ptr<kv::MigrationEngine> migrator_;
  std::vector<std::int64_t> snap_keys_;
  int listen_fd_ = -1;
  int accept_epoll_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() pokes the acceptor
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> settled_{0};  // reactors done with own conns
  ServerStats stats_;
};

}  // namespace mtx::net
