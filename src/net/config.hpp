// Layered serving-tier configuration.
//
// The PR 8 server took one flat ServerOptions struct, and every front end
// (bench/loadgen --spawn, bench/bench_net, campaign --net) re-declared the
// same store-geometry fields into its own options — three copies that could
// silently drift.  The multi-reactor server needs strictly more knobs
// (reactor count, shard ownership policy, per-reactor stream sizing), so
// the flat struct is replaced by composition:
//
//   ListenerConfig  — the socket: port, accept backlog, handshake policy
//   ReactorConfig   — the event loops: count, shard ownership policy,
//                     batching and snapshot-refresh cadence (per reactor)
//   StreamConfig    — per-reactor streaming conformance sizing
//   kv::StoreShape  — store geometry, THE shared struct the KV workload
//                     driver and the load generator also embed
//
// composed into ServerConfig, with validate() rejecting inconsistent
// combinations up front (reactors > shards, streaming with zero checkers,
// ...) instead of letting them misbehave at serve time.  Server's
// constructor throws std::invalid_argument on a non-empty validate().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "kv/kvstore.hpp"
#include "kv/migrate.hpp"

namespace mtx::net {

// Socket and accept-path policy.
struct ListenerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned; Server::port() reports it
  int backlog = 64;
  // Require a versioned HELLO as a connection's first frame; anything else
  // is a protocol violation (bad_frame, connection dropped).  Off by
  // default for one release: the no-HELLO compat path keeps pre-handshake
  // clients working while they migrate.
  bool require_hello = false;
};

// How shards map to reactors.  Both policies give reactor r a disjoint,
// exhaustive slice of [0, shards); they differ only in locality shape.
enum class ShardPolicy : std::uint8_t {
  modulo,  // shard s → reactor s % count (striped; default)
  block,   // shard s → reactor s / ceil(shards/count) (contiguous runs)
};

// The per-core event loops.
struct ReactorConfig {
  std::size_t count = 1;
  ShardPolicy policy = ShardPolicy::modulo;
  std::size_t max_batch = 16;  // per-connection same-shard run cap; 1 = unbatched
  // Re-publish the hot set's current values every N executed requests
  // (0 = never).  Per reactor: each reactor refreshes ONLY the shards it
  // owns, between its own requests — its quiet point — via the scoped
  // ShardHandle::refresh_snapshot, so a refresh never fences the whole
  // store on the hot path.
  std::size_t snap_refresh_every = 0;
};

// Streaming conformance while serving.  Per reactor: each reactor records
// into its own ring, marks its own epochs, and is judged by its own
// StreamConformance instance over exactly the shards it owns.
struct StreamConfig {
  bool enabled = false;
  std::size_t ring_capacity = 1u << 15;
  std::size_t checkers = 1;       // checker threads per reactor
  std::size_t epoch_ops = 512;    // executed requests per sealed segment
  std::size_t window_min_events = 64;
};

// A scripted live migration, executed mid-serve at the owning reactor's
// quiet point (between its requests, same place snapshot refreshes run).
// Both endpoint shards must be owned by the SAME reactor: the migration's
// plain accesses then flow into that reactor's recording stream and its
// fence covers stay inside the reactor's disjoint domain set — the other
// reactors only ever observe the epoch-stamped routing table flip, and
// in-flight requests for the moved range bounce as Status::moved.
struct MigrateConfig {
  std::size_t after_ops = 0;  // run once this reactor has executed N
                              // requests; 0 = no scripted migration
  kv::MigrateKind kind = kv::MigrateKind::move;
  std::size_t src = 0;
  std::size_t dst = 0;
};

struct ServerConfig {
  ListenerConfig listener;
  ReactorConfig reactors;
  StreamConfig stream;
  MigrateConfig migrate;
  kv::StoreShape store;

  // Empty string = consistent; otherwise a human-readable reason.
  std::string validate() const {
    if (reactors.count == 0) return "reactors.count must be >= 1";
    if (store.shards == 0) return "store.shards must be >= 1";
    if (const std::string why = store.validate(); !why.empty()) return why;
    if (reactors.count > store.shards)
      return "reactors.count (" + std::to_string(reactors.count) +
             ") exceeds store.shards (" + std::to_string(store.shards) +
             "): a reactor with no shards can serve nothing";
    if (reactors.max_batch == 0) return "reactors.max_batch must be >= 1";
    if (reactors.snap_refresh_every > 0 && store.snap_keys == 0)
      return "snap_refresh_every set but store.snap_keys == 0: nothing to refresh";
    if (stream.enabled) {
      if (stream.checkers == 0)
        return "stream enabled with zero checkers: segments would never be judged";
      if (stream.ring_capacity == 0)
        return "stream enabled with zero ring capacity";
      if (stream.epoch_ops == 0)
        return "stream enabled with epoch_ops == 0: no segment boundary";
    }
    if (migrate.after_ops > 0) {
      if (migrate.src >= store.shards || migrate.dst >= store.shards)
        return "migrate.src/dst must name shards in [0, store.shards)";
      if (migrate.src == migrate.dst)
        return "migrate.src == migrate.dst: nothing to re-home";
      if (owner_of(migrate.src) != owner_of(migrate.dst))
        return "migrate.src (reactor " + std::to_string(owner_of(migrate.src)) +
               ") and migrate.dst (reactor " +
               std::to_string(owner_of(migrate.dst)) +
               ") have different owners: a scripted migration must stay on "
               "one reactor so its plain accesses land in one stream";
    }
    return "";
  }

  // The owning reactor of a shard under the configured policy.
  std::size_t owner_of(std::size_t shard) const {
    if (reactors.policy == ShardPolicy::modulo) return shard % reactors.count;
    const std::size_t per =
        (store.shards + reactors.count - 1) / reactors.count;
    const std::size_t r = shard / per;
    return r < reactors.count ? r : reactors.count - 1;
  }
};

}  // namespace mtx::net
