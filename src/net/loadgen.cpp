#include "net/loadgen.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <deque>

#include "net/protocol.hpp"
#include "substrate/rng.hpp"
#include "substrate/threading.hpp"

namespace mtx::net {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

int connect_loopback(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

// What one connection remembers about an issued frame: the full request
// (so a Status::moved bounce can be re-issued verbatim) plus the intended
// timestamp that stamps the coordinated-omission-safe latency.  The
// intended time survives retries: a moved round-trip is part of the op's
// latency, not a fresh arrival.
struct InFlight {
  std::uint64_t intended_ns;
  Request req;
};

struct ConnTally {
  std::uint64_t intended = 0, sent = 0, completed = 0, errors = 0,
                form_violations = 0;
  std::uint64_t moved_retries = 0;
  std::uint64_t gets = 0, snap_reads = 0, puts = 0, inserts = 0, scans = 0,
                rmws = 0;
  LatencyHist hist;
};

}  // namespace

LoadgenResult run_loadgen(const LoadgenOptions& opts) {
  LoadgenResult res;
  const kv::Mix* mix = opts.mix ? opts.mix : kv::mix_by_name("hot");
  if (!mix) return res;
  const std::size_t conns = std::max<std::size_t>(1, opts.connections);
  const double per_conn_rate = opts.rate / static_cast<double>(conns);
  const double mean_gap_ns =
      per_conn_rate > 0 ? 1e9 / per_conn_rate : 1e6;
  const std::size_t preload = std::max<std::size_t>(1, opts.store.preload_keys);
  const std::size_t snap_n =
      std::max<std::size_t>(1, std::min(opts.store.snap_keys, preload));
  const kv::KeyChooser chooser(*mix, preload);

  std::vector<ConnTally> tallies(conns);
  const auto t0 = Clock::now();
  const std::uint64_t deadline = opts.deadline_ms * 1'000'000ull;

  run_team(conns, [&](std::size_t cid) {
    ConnTally& tally = tallies[cid];
    const int fd = connect_loopback(opts.host, opts.port);
    if (fd < 0) {
      ++tally.errors;
      return;
    }
    // Same (seed, id) derivation as the in-process driver's workers, so a
    // (mix, seed, connections, ops) tuple names one planned op stream.
    Rng rng(opts.seed * 0x9e3779b9ULL + cid * 131 + 1);

    std::vector<std::uint8_t> out, in;
    std::size_t out_off = 0, in_off = 0;
    std::deque<InFlight> inflight;
    std::uint64_t next_send = now_ns(t0);  // schedule starts immediately
    std::uint64_t sent = 0, completed = 0;
    bool dead = false;

    if (opts.hello) {
      // Announce before the schedule starts; the handshake rides the same
      // pipeline and its response is audited (but it is not a workload op:
      // it joins neither intended/sent/completed nor the histogram).
      Request h;
      h.op = OpCode::hello;
      h.major = kProtoMajor;
      h.minor = kProtoMinor;
      encode_request(h, out);
      inflight.push_back({now_ns(t0), h});
    }

    const auto schedule_gap = [&]() -> std::uint64_t {
      if (!opts.poisson) return static_cast<std::uint64_t>(mean_gap_ns);
      // Exponential inter-arrival: -ln(1-u) * mean, one Rng value per gap.
      const double u = rng.uniform01();
      const double gap = -std::log(1.0 - u) * mean_gap_ns;
      return static_cast<std::uint64_t>(std::max(1.0, gap));
    };

    const auto build_request = [&](std::uint64_t i) -> Request {
      Request req;
      switch (kv::draw_op(rng, *mix)) {
        case kv::OpKind::read: {
          req.key = chooser.next(rng);
          // Hot-set reads ride the snapshot publication fast path.
          if (req.key < static_cast<std::int64_t>(snap_n)) {
            req.op = OpCode::snap_read;
            ++tally.snap_reads;
          } else {
            req.op = OpCode::get;
            ++tally.gets;
          }
          break;
        }
        case kv::OpKind::update:
          req.op = OpCode::put;
          req.key = chooser.next(rng);
          req.arg = kv::value_of(req.key,
                                 static_cast<std::int64_t>(cid * 7919 + i));
          ++tally.puts;
          break;
        case kv::OpKind::insert:
          req.op = OpCode::insert;
          req.key = static_cast<std::int64_t>(preload +
                                              cid * opts.ops_per_conn + i);
          req.arg = kv::value_of(req.key, static_cast<std::int64_t>(i));
          ++tally.inserts;
          break;
        case kv::OpKind::scan:
          req.op = OpCode::scan;
          req.shard = static_cast<std::uint32_t>(
              rng.below(std::max<std::size_t>(1, opts.store.shards)));
          ++tally.scans;
          break;
        case kv::OpKind::rmw:
          req.op = OpCode::rmw;
          req.key = chooser.next(rng);
          req.arg = 1;
          ++tally.rmws;
          break;
        case kv::OpKind::snap: {
          req.op = OpCode::snap_read;
          req.key = static_cast<std::int64_t>(rng.below(snap_n));
          ++tally.snap_reads;
          break;
        }
      }
      return req;
    };

    const auto audit = [&](const InFlight& f, const Response& r) {
      if (r.op != f.req.op) {
        ++tally.errors;  // response stream desynced
        return;
      }
      switch (r.op) {
        case OpCode::get:
        case OpCode::snap_read:
        case OpCode::rmw:
          if (r.status == Status::ok &&
              !kv::value_form_ok(f.req.key, r.value))
            ++tally.form_violations;
          if (r.status == Status::error) ++tally.errors;
          break;
        default:
          if (r.status == Status::error) ++tally.errors;
          break;
      }
    };

    while (!dead && (sent < opts.ops_per_conn || !inflight.empty())) {
      std::uint64_t now = now_ns(t0);
      if (now > deadline) {
        ++tally.errors;
        break;
      }
      // Open loop: enqueue every arrival the schedule owes by now — the
      // intended timestamp is the SCHEDULED time, never the actual send.
      while (sent < opts.ops_per_conn && now >= next_send) {
        const Request req = build_request(sent);
        inflight.push_back({next_send, req});
        encode_request(req, out);
        ++tally.intended;
        ++sent;
        next_send += schedule_gap();
      }
      // Push bytes; EAGAIN leaves them queued locally — that delay is real
      // and the intended timestamps will charge it to latency.
      while (out_off < out.size()) {
        const ssize_t n = ::send(fd, out.data() + out_off,
                                 out.size() - out_off, MSG_NOSIGNAL);
        if (n > 0) {
          out_off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;
        ++tally.errors;
        break;
      }
      if (out_off == out.size()) {
        out.clear();
        out_off = 0;
        tally.sent = sent;
      }
      // Drain responses.
      for (;;) {
        std::uint8_t buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
          in.insert(in.end(), buf, buf + n);
          continue;
        }
        if (n == 0) {
          if (!inflight.empty()) {
            dead = true;
            ++tally.errors;
          }
        } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
          dead = true;
          ++tally.errors;
        }
        break;
      }
      now = now_ns(t0);
      for (;;) {
        Response resp;
        std::size_t consumed = 0;
        const Decode d = decode_response(in.data() + in_off,
                                         in.size() - in_off, &resp, &consumed);
        if (d == Decode::need_more) break;
        if (d == Decode::bad_frame || inflight.empty()) {
          dead = true;
          ++tally.errors;
          break;
        }
        in_off += consumed;
        const InFlight f = inflight.front();
        inflight.pop_front();
        if (f.req.op == OpCode::hello) {
          if (resp.op != OpCode::hello || resp.status != Status::ok ||
              resp.major != kProtoMajor ||
              (resp.features & kFeatBatching) == 0)
            ++tally.errors;
          continue;
        }
        if (resp.status == Status::moved && resp.op == f.req.op) {
          // Live migration bounced the op: routing moved its key after the
          // frame was coalesced server-side.  Re-issue the SAME request,
          // keeping the ORIGINAL intended timestamp — the op hasn't
          // completed, so it joins neither the histogram nor `completed`,
          // and the retry's extra round-trip is charged to its latency.
          // intended/sent are untouched: this is the same logical arrival.
          encode_request(f.req, out);
          inflight.push_back(f);
          ++tally.moved_retries;
          continue;
        }
        audit(f, resp);
        tally.hist.add(now > f.intended_ns ? now - f.intended_ns : 0);
        ++completed;
      }
      if (in_off == in.size()) {
        in.clear();
        in_off = 0;
      }
      // Sleep until the schedule or the socket needs us.
      if (!dead && (sent < opts.ops_per_conn || !inflight.empty())) {
        pollfd pfd{fd, POLLIN, 0};
        if (out_off < out.size()) pfd.events |= POLLOUT;
        int timeout_ms = 0;
        if (sent < opts.ops_per_conn) {
          now = now_ns(t0);
          timeout_ms = now >= next_send
                           ? 0
                           : static_cast<int>((next_send - now) / 1'000'000);
        } else {
          timeout_ms = 1;
        }
        if (timeout_ms > 0) ::poll(&pfd, 1, std::min(timeout_ms, 10));
      }
    }
    tally.sent = sent;
    tally.completed = completed;
    ::close(fd);
  });

  res.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  for (const ConnTally& t : tallies) {
    res.intended += t.intended;
    res.sent += t.sent;
    res.completed += t.completed;
    res.errors += t.errors;
    res.form_violations += t.form_violations;
    res.moved_retries += t.moved_retries;
    res.gets += t.gets;
    res.snap_reads += t.snap_reads;
    res.puts += t.puts;
    res.inserts += t.inserts;
    res.scans += t.scans;
    res.rmws += t.rmws;
    res.hist.merge(t.hist);
  }
  if (res.wall_ms > 0) {
    res.offered_per_sec =
        static_cast<double>(res.intended) / (res.wall_ms / 1e3);
    res.achieved_per_sec =
        static_cast<double>(res.completed) / (res.wall_ms / 1e3);
  }
  return res;
}

}  // namespace mtx::net
