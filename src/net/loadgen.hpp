// Open-loop load generator for the serving front end.
//
// Closed-loop drivers (issue, wait, issue) hide queueing: when the server
// stalls, the driver stops offering load, so the recorded latencies are
// exactly the ones the stall never touched — coordinated omission.  This
// generator is open-loop: each connection precomputes an arrival schedule
// (fixed-rate or Poisson exponential gaps) and STAMPS EVERY REQUEST WITH
// ITS INTENDED SEND TIME; latency is measured from that intended time to
// response receipt, so schedule slip — whether the socket backed up or the
// server queued — lands in the histogram instead of vanishing from it.
// The schedule never waits for responses (no in-flight cap); per-thread
// LatencyHist sinks merge into one histogram at the end.
//
// Op/key choice reuses the in-process driver's shared scenario vocabulary
// (kv::draw_op + kv::KeyChooser, e.g. the `hot` mix), so the network tier
// and the in-process tier speak one hot-key definition.  Reads of hot-set
// keys (rank < snap_keys) are issued as SNAP_READ — the snapshot
// publication fast path — and every returned value is audited against
// kv::value_form_ok.
#pragma once

#include <cstdint>
#include <string>

#include "kv/workload.hpp"
#include "substrate/stats.hpp"

namespace mtx::net {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 2;     // one thread + socket each
  double rate = 20000;             // intended arrivals/sec, aggregate
  bool poisson = false;            // exponential gaps instead of fixed
  std::uint64_t ops_per_conn = 2000;
  const kv::Mix* mix = nullptr;    // nullptr = the `hot` standard mix
  // Store geometry as the SERVER sees it (one shared struct, so the
  // generator and ServerConfig can be built from the same value):
  // preload_keys bounds the key space, shards the SCAN target range,
  // snap_keys the rank below which reads go SNAP_READ.
  kv::StoreShape store;
  // Open each connection with a versioned HELLO and audit the response
  // (protocol major must match, batching must be advertised).  Off =
  // the pre-handshake compat path.
  bool hello = true;
  std::uint64_t seed = 1;
  std::uint64_t deadline_ms = 30000;  // hard cap; overruns count as errors
};

struct LoadgenResult {
  std::uint64_t intended = 0;   // scheduled arrivals
  std::uint64_t sent = 0;       // frames actually written
  std::uint64_t completed = 0;  // responses received and matched
  std::uint64_t errors = 0;     // connect/send/decode/mismatch/deadline
  std::uint64_t form_violations = 0;  // kv::value_form_ok failures
  double wall_ms = 0;
  double offered_per_sec = 0;   // intended / wall
  double achieved_per_sec = 0;  // completed / wall
  LatencyHist hist;  // ns from INTENDED send to response receipt
  // Status::moved bounces retried transparently: the request is re-issued
  // with its ORIGINAL intended timestamp, so the retry round-trip is
  // charged to the op's latency (coordinated omission stays charged) and
  // the op completes exactly once.  Informational — ok() is unchanged.
  std::uint64_t moved_retries = 0;
  // Planned op classes (deterministic per mix/seed/connections/ops).
  std::uint64_t gets = 0, snap_reads = 0, puts = 0, inserts = 0, scans = 0,
                rmws = 0;
  bool ok() const {
    return errors == 0 && form_violations == 0 && completed == sent &&
           sent == intended;
  }
};

LoadgenResult run_loadgen(const LoadgenOptions& opts);

}  // namespace mtx::net
