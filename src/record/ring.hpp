// Lock-free per-thread event capture for the streaming conformance
// pipeline: a fixed-slot single-producer / single-consumer ring of recorded
// Events.
//
// The post-hoc recorder appends to a per-thread std::vector and the trace
// is assembled after the run; nothing can observe an execution while it
// runs.  Streaming mode replaces that vector with one EventRing per
// recording thread: the producer is the recording thread (push from the
// TxObserver hooks), the consumer is the window cutter draining
// concurrently with traffic.  Slots are fixed at construction — no
// allocation, no locks, no resizing on the hot path.
//
// Overflow accounting is explicit and loud: a push into a full ring DROPS
// the event and counts it (dropped() / overflowed()).  A dropped event
// would leave a dangling reads-from in the assembled windows, so the
// streaming checker treats any overflow as a failed run (StreamReport::ok()
// is false) rather than silently judging a hole-ridden trace.  Size the
// ring for the round, or fail visibly — never lose events quietly.
//
// Epoch marks: the workload's round barrier is the segment boundary.  At
// the barrier each producer pushes an in-band mark carrying its epoch
// number; the consumer knows segment e is complete once every ring has
// yielded mark(e) (per-ring FIFO order is the thread's program order, and
// the global seq tickets order events across rings).  Marks must not be
// dropped — the producer spins for a slot (the consumer is draining and
// the producer is at a barrier, so the wait is bounded) — and therefore
// sealing survives data overflow: the segment is still cut, judged, and
// flagged.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "record/recorder.hpp"

namespace mtx::record {

// One slot in the ring: a recorded event, or an epoch mark.
struct RingItem {
  Event ev;
  std::uint64_t epoch = 0;  // valid when is_mark
  bool is_mark = false;
};

class EventRing {
 public:
  // Capacity is rounded up to a power of two (slot arithmetic stays a mask).
  explicit EventRing(std::size_t capacity = 1u << 14) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  // Producer: append an event.  Returns false — and counts the drop —
  // when the ring is full.  Never blocks, never overwrites.
  bool push(const Event& e) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[t & mask_] = RingItem{e, 0, false};
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Producer: append the end-of-epoch mark, waiting for a slot if the ring
  // is momentarily full (marks are the sealing protocol and cannot be
  // dropped; the producer is at a round barrier, the consumer is draining,
  // so the wait is bounded by one drain pass).
  void push_mark(std::uint64_t epoch) {
    for (;;) {
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      if (t - head_.load(std::memory_order_acquire) < slots_.size()) {
        slots_[t & mask_] = RingItem{Event{}, epoch, true};
        tail_.store(t + 1, std::memory_order_release);
        return;
      }
    }
  }

  // Consumer: pop at most `max` items into `out` (appended).  Returns the
  // number taken.
  std::size_t drain(std::vector<RingItem>& out,
                    std::size_t max = static_cast<std::size_t>(-1)) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    std::size_t n = static_cast<std::size_t>(t - h);
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) out.push_back(slots_[(h + i) & mask_]);
    head_.store(h + n, std::memory_order_release);
    return n;
  }

  // Approximate backlog (racy by nature; exact when producer is quiescent).
  std::size_t size() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_acquire);
  }
  bool overflowed() const { return dropped() > 0; }

 private:
  std::vector<RingItem> slots_;
  std::size_t mask_ = 0;
  // Producer and consumer indices on separate cache lines; both are
  // monotone uint64 counters (position = counter & mask), so fullness is
  // tail - head regardless of wraparound.
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace mtx::record
