// Conformance checking of recorded executions: run the model layer's
// well-formedness, race, and opacity passes over a trace assembled from a
// real STM run.  This is the paper's judgment applied to the repo's own
// runtime — every stress workload becomes an oracle.
//
// A conforming execution is well-formed (WF1..WF12), L-race-free for
// L = all locations (protocol-correct workloads have no plain/transactional
// conflicts outside happens-before), mixed-race-free (Lemma 5.1's
// hypothesis: no transactional-write/plain-write race), and opaque.  The
// full §2 consistency axioms are also evaluated and reported.
#pragma once

#include <string>

#include "model/consistency.hpp"
#include "model/model_config.hpp"
#include "model/trace.hpp"
#include "model/wellformed.hpp"

namespace mtx::record {

struct ConformanceReport {
  model::WfReport wf;
  std::size_t l_races = 0;     // races over L = all locations
  bool mixed_race = false;     // transactional-write vs plain-write race
  bool opaque = false;         // all transactions, aborted readers included
  bool opaque_committed = false;  // committed subsystem only (Thm 4.2 trace)
  bool consistent = false;     // §2 axioms under the chosen config
  std::string config;

  std::size_t actions = 0;
  std::size_t txns = 0;        // including init
  std::size_t committed = 0;   // including init
  std::size_t aborted = 0;

  bool ok() const { return wf.ok() && l_races == 0 && !mixed_race && opaque; }
  std::string str() const;
};

// Checks `t` under `cfg`; the implementation model (§5, quiescence fences
// enabled) is the natural choice for runtime recordings.
ConformanceReport check_conformance(
    const model::Trace& t,
    const model::ModelConfig& cfg = model::ModelConfig::implementation());

}  // namespace mtx::record
