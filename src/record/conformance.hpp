// Conformance checking of recorded executions: run the model layer's
// well-formedness, race, and opacity passes over a trace assembled from a
// real STM run.  This is the paper's judgment applied to the repo's own
// runtime — every stress workload becomes an oracle.
//
// A conforming execution is well-formed (WF1..WF12), L-race-free for
// L = all locations (protocol-correct workloads have no plain/transactional
// conflicts outside happens-before), mixed-race-free (Lemma 5.1's
// hypothesis: no transactional-write/plain-write race), and opaque.  The
// full §2 consistency axioms are also evaluated and reported.
//
// All passes share one AnalysisContext: the derived relations and the
// happens-before closure are computed exactly once per check.  For long
// recordings, check_conformance_windowed cuts the trace at valid
// full-quiescence boundaries (record/assemble.hpp) and judges each window
// independently — optionally in parallel — merging the verdicts; the
// fence bound guarantees no race or dependency cycle crosses a valid cut.
#pragma once

#include <string>

#include "model/analysis.hpp"
#include "model/consistency.hpp"
#include "model/model_config.hpp"
#include "model/trace.hpp"
#include "model/wellformed.hpp"

namespace mtx::record {

struct ConformanceReport {
  model::WfReport wf;
  std::size_t l_races = 0;     // races over L = all locations
  std::size_t tx_races = 0;    // of those, races with a transactional side
  bool mixed_race = false;     // transactional-write vs plain-write race
  bool opaque = false;         // all transactions, aborted readers included
  bool opaque_committed = false;  // committed subsystem only (Thm 4.2 trace)
  bool consistent = false;     // §2 axioms under the chosen config
  std::string config;

  std::size_t actions = 0;
  std::size_t txns = 0;        // including init
  std::size_t committed = 0;   // including init
  std::size_t aborted = 0;

  // Windowed-mode provenance (1 / 0 for a monolithic check).
  std::size_t windows = 1;
  std::size_t window_cuts = 0;

  bool ok() const { return wf.ok() && l_races == 0 && !mixed_race && opaque; }
  // The judgment alone — independent of how it was computed, so windowed
  // and monolithic runs over the same trace compare byte-identical.
  std::string verdict() const;
  std::string str() const;
};

// Checks `t` under `cfg`; the implementation model (§5, quiescence fences
// enabled) is the natural choice for runtime recordings.
ConformanceReport check_conformance(
    const model::Trace& t,
    const model::ModelConfig& cfg = model::ModelConfig::implementation());

// Judges through an existing analysis context instead of building a fresh
// one — the entry point for chained window analysis (model::ChainedAnalysis
// hands out one context per window; the streaming checker and the windowed
// checker below both route through it).  Verdict-identical to
// check_conformance(ctx.trace(), ctx.config()).
ConformanceReport check_conformance(model::AnalysisContext& ctx);

struct WindowedOptions {
  // Skip a valid cut while its window would hold fewer source events.
  std::size_t min_window_events = 64;
  // Worker threads for per-window checks: 1 = serial (the default — campaign
  // jobs are already parallel), 0 = hardware concurrency.
  std::size_t threads = 1;
};

// Fence-bounded windowed conformance: cut at valid full-quiescence
// boundaries and judge windows independently.  Verdicts merge as: WF
// violations concatenate, race counts add, mixed_race ORs, opacity and
// consistency AND.  Traces without valid cuts fall back to the monolithic
// check.  Requires cfg.qfences (the cut argument relies on HBCQ/HBQB).
ConformanceReport check_conformance_windowed(
    const model::Trace& t,
    const model::ModelConfig& cfg = model::ModelConfig::implementation(),
    const WindowedOptions& opts = {});

}  // namespace mtx::record
