// Deterministic assembly of a RecordSession's per-thread logs into a
// model::Trace (§2 syntax): the init transaction writing 0 to every touched
// location at timestamp 0, then every recorded event in global sequence
// order.  Write timestamps are the recorder's per-location versions
// (rational q = version), reads carry their fulfilling write's version, so
// the model's wr/ww relations reconstruct the execution exactly.
//
// Quiescence fences need one adjustment.  The model's <Qx> action is
// atomic, but the runtime fence spans time: transactions that began after
// the fence's epoch cutoff may still be in flight when the fence returns
// (and takes its sequence ticket), which would violate WF12.  Assembly
// therefore *sinks* each fence just past the resolution of every
// transaction open at its ticket — sound for fence-protected protocols
// (such transactions resolved while the fence was returning, i.e. before
// any post-fence access of the fencing thread), and then expands it to one
// <Qx> per *covered* location: a domain-scoped fence (Event::cover >= 0)
// yields QFences for exactly the cells its QuiesceDomain enumerated, an
// unscoped fence a single *summary* fence <Q*> (model::kAllLocs) standing
// for the whole family.  Both keep recorded traces from paying one QFence
// per location in the whole store per fence.
#pragma once

#include <cstdint>
#include <string>

#include "model/trace.hpp"
#include "record/recorder.hpp"

namespace mtx::record {

struct RecordedTrace {
  model::Trace trace;

  // Assembly metadata (not part of the model trace).
  struct Meta {
    std::size_t events = 0;          // merged events (pre fence-expansion)
    std::size_t txns = 0;            // begins (excluding init)
    std::size_t committed = 0;
    std::size_t aborted = 0;
    std::size_t reads = 0;           // transactional reads recorded
    std::size_t writes = 0;          // transactional writes recorded
    std::size_t plain_reads = 0;
    std::size_t plain_writes = 0;
    std::size_t fences = 0;
    std::size_t buffered_reads = 0;  // redo-log hits (not in the trace)
    int num_locs = 0;
    int threads = 0;                 // distinct recorded thread ids
    std::string plain_order;         // Cell plain-access mode in effect
  } meta;
};

// Merge all logs of `s`.  Call only after every recording thread has been
// joined and every ScopedRecorder destroyed.
RecordedTrace assemble(const RecordSession& s);

// ----- assembly building blocks (shared with the streaming cutter) -------

// One recorded event tagged with its thread; the unit both assemble() and
// the streaming segment assembler merge and convert.
struct MergedEvent {
  Event ev;
  int thread = 0;
};

// Sink each fence past the resolutions of the transactions open at its
// position (the WF12 adjustment described above).  A scoped fence is first
// split into one per-location event (Event::cover = kFenceCoverSingle,
// Event::loc = the covered location) so each <Qx> settles independently:
// it sinks only past open transactions that touch x, never past the
// fencing thread's unrelated neighbors' spans — crucial when another
// thread's long-preempted transaction brackets the fence owner's
// subsequent plain phase.  `evs` must be in seq order; it is rewritten in
// place; covers resolve through `s`.
void sink_fences(std::vector<MergedEvent>& evs, const RecordSession& s);

// Append `evs` (seq-sorted, fences already sunk) to `t`, converting each
// event to its model action: versions become write timestamps, fence covers
// expand through `s`'s cover table (unscoped fences become one summary
// <Q*>).  Tallies into `meta` when non-null.
void append_events(model::Trace& t, const std::vector<MergedEvent>& evs,
                   const RecordSession& s, RecordedTrace::Meta* meta);

// ----- fence-bounded windowing (§5: races are bounded in space and time) --
//
// A quiescence fence group (one runtime fence, expanded to a <Qx> per
// covered location) is a *cut candidate*: HBCQ orders every committed
// pre-group transaction touching a covered x before <Qx>, and HBQB orders
// <Qx> before every post-group transaction touching x.  A candidate becomes
// a *valid cut* when the fence provably bounds every conflict across it:
//
//   (a) no transaction spans the group (begins before it resolve before it);
//   (b) every pre-group plain access to a covered x is published -- followed
//       in its thread by a commit of a transaction touching x before the
//       group -- or belongs to the fencing thread itself (po into the fence);
//   (c) every post-group plain access to a covered x is privatized --
//       preceded in its thread (after the group) by a begin of a transaction
//       touching x -- or belongs to the fencing thread (po out of the fence);
//   (d) every location the group does NOT cover is accessed on one side of
//       the group only (no exemptions: with no <Qy> in the group, nothing
//       orders a cross-cut pair on y, whoever runs it).
//
// Under (a)-(d) every conflicting pair straddling the cut is happens-before
// ordered through some <Qx>, so no L-race, mixed race, or serialization edge
// cycle can cross it: windows may be judged independently.  A racy access
// that would straddle a cut (e.g. an unpublished plain write, or any
// double-sided traffic on an uncovered location) *invalidates* the cut,
// growing the window until the race is internal -- which is how seeded
// races are still caught, and why a shard-scoped KV fence only cuts windows
// whose surrounding traffic stays confined to that shard.
//
// Each window trace is rebuilt as: fresh init transaction, a synthetic
// committed *carry* transaction writing the last visible (value, timestamp)
// at the cut for each location the window actually accesses (sparse: an
// unaccessed location's carry write fulfils no read and joins no race, so
// it is omitted rather than paying O(|store|) per window), the opening
// fence group (shared with the previous window -- the "overlap" -- so
// HBCQ/HBQB edges anchor the carry state), then the slice up to and
// including the closing group.
struct TraceWindow {
  model::Trace trace;
  std::size_t first = 0;    // source-trace slice [first, last], inclusive
  std::size_t last = 0;
  std::size_t carried = 0;  // carry writes prepended
};

struct WindowPlan {
  std::vector<TraceWindow> windows;
  std::size_t cut_candidates = 0;  // fence groups seen (any coverage)
  std::size_t cuts = 0;            // valid cuts taken
};

// Cuts `t` at every valid quiescence boundary; a valid cut is skipped
// while the window it would close holds fewer than `min_window_events`
// source actions.  A trace with no valid cuts yields one window whose trace
// is `t` itself.
WindowPlan cut_windows(const model::Trace& t, std::size_t min_window_events = 0);

}  // namespace mtx::record
