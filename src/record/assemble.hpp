// Deterministic assembly of a RecordSession's per-thread logs into a
// model::Trace (§2 syntax): the init transaction writing 0 to every touched
// location at timestamp 0, then every recorded event in global sequence
// order.  Write timestamps are the recorder's per-location versions
// (rational q = version), reads carry their fulfilling write's version, so
// the model's wr/ww relations reconstruct the execution exactly.
//
// Quiescence fences need one adjustment.  The model's <Qx> action is
// atomic, but the runtime fence spans time: transactions that began after
// the fence's epoch cutoff may still be in flight when the fence returns
// (and takes its sequence ticket), which would violate WF12.  Assembly
// therefore *sinks* each fence just past the resolution of every
// transaction open at its ticket — sound for fence-protected protocols
// (such transactions resolved while the fence was returning, i.e. before
// any post-fence access of the fencing thread), and then expands it to one
// <Qx> per location, matching the conservative all-locations fence the
// runtime implements.
#pragma once

#include <cstdint>
#include <string>

#include "model/trace.hpp"
#include "record/recorder.hpp"

namespace mtx::record {

struct RecordedTrace {
  model::Trace trace;

  // Assembly metadata (not part of the model trace).
  struct Meta {
    std::size_t events = 0;          // merged events (pre fence-expansion)
    std::size_t txns = 0;            // begins (excluding init)
    std::size_t committed = 0;
    std::size_t aborted = 0;
    std::size_t reads = 0;           // transactional reads recorded
    std::size_t writes = 0;          // transactional writes recorded
    std::size_t plain_reads = 0;
    std::size_t plain_writes = 0;
    std::size_t fences = 0;
    std::size_t buffered_reads = 0;  // redo-log hits (not in the trace)
    int num_locs = 0;
    int threads = 0;                 // distinct recorded thread ids
    std::string plain_order;         // Cell plain-access mode in effect
  } meta;
};

// Merge all logs of `s`.  Call only after every recording thread has been
// joined and every ScopedRecorder destroyed.
RecordedTrace assemble(const RecordSession& s);

}  // namespace mtx::record
