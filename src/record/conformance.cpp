#include "record/conformance.hpp"

#include "model/opacity.hpp"
#include "model/race.hpp"

namespace mtx::record {

ConformanceReport check_conformance(const model::Trace& t,
                                    const model::ModelConfig& cfg) {
  ConformanceReport out;
  out.config = cfg.name;
  out.actions = t.size();
  for (std::size_t b : t.begins()) {
    ++out.txns;
    switch (t.txn_state(b)) {
      case model::TxnState::Committed: ++out.committed; break;
      case model::TxnState::Aborted: ++out.aborted; break;
      case model::TxnState::Live: break;
    }
  }

  const model::Analysis a = model::analyze(t, cfg);
  out.wf = a.wf;
  out.consistent = a.consistent();
  out.l_races = model::find_l_races(t, a.hb, model::all_locs(t)).size();
  out.mixed_race = model::has_mixed_race(t, a.hb);
  out.opaque = model::opaque(t);
  // Opacity of the committed subsystem (the Thm 4.2 projection): the
  // guarantee backends with zombie reads (Example 3.4) still provide.
  out.opaque_committed = out.opaque || model::opaque(t.without_aborted());
  return out;
}

std::string ConformanceReport::str() const {
  std::string s;
  s += "actions=" + std::to_string(actions) +
       " txns=" + std::to_string(txns) +
       " committed=" + std::to_string(committed) +
       " aborted=" + std::to_string(aborted) +
       " config=" + config + "\n";
  s += std::string("wellformed=") + (wf.ok() ? "yes" : "NO") +
       " l_races=" + std::to_string(l_races) +
       " mixed_race=" + (mixed_race ? "YES" : "no") +
       " opaque=" + (opaque ? "yes" : "NO") +
       " opaque_committed=" + (opaque_committed ? "yes" : "NO") +
       " consistent=" + (consistent ? "yes" : "no") + "\n";
  if (!wf.ok()) s += wf.str();
  return s;
}

}  // namespace mtx::record
