#include "record/conformance.hpp"

#include "model/opacity.hpp"
#include "model/race.hpp"
#include "record/assemble.hpp"
#include "substrate/threading.hpp"

namespace mtx::record {

namespace {

void count_transactions(const model::Trace& t, ConformanceReport& out) {
  out.actions = t.size();
  for (std::size_t b : t.begins()) {
    ++out.txns;
    switch (t.txn_state(b)) {
      case model::TxnState::Committed: ++out.committed; break;
      case model::TxnState::Aborted: ++out.aborted; break;
      case model::TxnState::Live: break;
    }
  }
}

// The judgment passes, sharing one analysis context (relations and hb are
// each computed exactly once per checked trace).
void judge(model::AnalysisContext& ctx, ConformanceReport& out) {
  const model::Trace& t = ctx.trace();
  out.wf = ctx.wf_report();
  out.consistent = ctx.wellformed() && model::axioms_hold(ctx);
  const std::vector<model::Race> races =
      model::find_l_races(ctx, model::all_locs(t));
  out.l_races = races.size();
  for (const model::Race& r : races)
    if (t.transactional(r.first) || t.transactional(r.second)) ++out.tx_races;
  out.mixed_race = model::has_mixed_race(ctx);
  out.opaque = model::opaque(ctx);
  // Opacity of the committed subsystem (the Thm 4.2 projection): the
  // guarantee backends with zombie reads (Example 3.4) still provide.
  out.opaque_committed = out.opaque || model::opaque(t.without_aborted());
}

}  // namespace

ConformanceReport check_conformance(const model::Trace& t,
                                    const model::ModelConfig& cfg) {
  model::AnalysisContext ctx(t, cfg);
  return check_conformance(ctx);
}

ConformanceReport check_conformance(model::AnalysisContext& ctx) {
  ConformanceReport out;
  out.config = ctx.config().name;
  count_transactions(ctx.trace(), out);
  judge(ctx, out);
  return out;
}

ConformanceReport check_conformance_windowed(const model::Trace& t,
                                             const model::ModelConfig& cfg,
                                             const WindowedOptions& opts) {
  // The cut soundness argument lives entirely in the HBCQ/HBQB fence
  // edges; without them a cut would separate racing accesses that nothing
  // orders.  Fall back to the monolithic judgment for fence-less models.
  if (!cfg.qfences) return check_conformance(t, cfg);

  WindowPlan plan = cut_windows(t, opts.min_window_events);
  if (plan.windows.size() <= 1) {
    ConformanceReport out = check_conformance(t, cfg);
    out.window_cuts = plan.cuts;
    return out;
  }

  // Transaction statistics come from the source trace (window traces carry
  // synthetic init/carry transactions that are bookkeeping, not workload).
  ConformanceReport out;
  out.config = cfg.name;
  count_transactions(t, out);
  out.windows = plan.windows.size();
  out.window_cuts = plan.cuts;

  // Windows go through chained analysis (the word-parallel builders and the
  // forward closure): one chain serially, or one single-window chain per
  // task in parallel mode (the chain object is not thread-safe).
  std::vector<ConformanceReport> subs;
  if (opts.threads == 1) {
    model::ChainedAnalysis chain(cfg);
    subs.reserve(plan.windows.size());
    for (const TraceWindow& w : plan.windows)
      subs.push_back(check_conformance(chain.advance(w.trace)));
  } else {
    ThreadPool pool(opts.threads);
    subs = parallel_map<ConformanceReport>(
        pool, plan.windows.size(), [&](std::size_t i) {
          model::ChainedAnalysis chain(cfg);
          return check_conformance(chain.advance(plan.windows[i].trace));
        });
  }

  out.opaque = true;
  out.opaque_committed = true;
  out.consistent = true;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const ConformanceReport& s = subs[i];
    for (const model::WfViolation& v : s.wf.violations)
      out.wf.violations.push_back(
          {v.rule, "[window " + std::to_string(i) + "] " + v.msg});
    out.l_races += s.l_races;
    out.tx_races += s.tx_races;
    out.mixed_race = out.mixed_race || s.mixed_race;
    out.opaque = out.opaque && s.opaque;
    out.opaque_committed = out.opaque_committed && s.opaque_committed;
    out.consistent = out.consistent && s.consistent;
  }
  return out;
}

std::string ConformanceReport::verdict() const {
  std::string s;
  s += std::string("wellformed=") + (wf.ok() ? "yes" : "NO") +
       " l_races=" + std::to_string(l_races) +
       " mixed_race=" + (mixed_race ? "YES" : "no") +
       " opaque=" + (opaque ? "yes" : "NO") +
       " opaque_committed=" + (opaque_committed ? "yes" : "NO") +
       " consistent=" + (consistent ? "yes" : "no");
  return s;
}

std::string ConformanceReport::str() const {
  std::string s;
  s += "actions=" + std::to_string(actions) +
       " txns=" + std::to_string(txns) +
       " committed=" + std::to_string(committed) +
       " aborted=" + std::to_string(aborted) +
       " config=" + config;
  if (windows > 1)
    s += " windows=" + std::to_string(windows) +
         " cuts=" + std::to_string(window_cuts);
  s += "\n" + verdict() + "\n";
  if (!wf.ok()) s += wf.str();
  return s;
}

}  // namespace mtx::record
