#include "record/assemble.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace mtx::record {

// Sink each fence past the resolutions of the transactions open at its
// position (see header).  Fences are pulled out first and their insertion
// points computed against the *fence-free* event list, whose indices are
// stable: each fence's target only ever increases and is bounded by the
// list length, so the fixpoint terminates, and fences cannot perturb each
// other's spans (two concurrent fences inside one transaction both sink
// just past its resolution, keeping their relative order).
//
// A scoped fence is split into one event per covered location, and each
// <Qx> sinks only past spans whose transaction touches x.  WF12 is a
// per-location constraint, so this is exactly as much motion as the
// adjustment needs — and no more.  The restraint is what keeps program
// order honest: an unrelated transaction in another thread can bracket
// thousands of events (a long-preempted thread resumes after a privatize
// owner's tight plain-copy loop has drawn that many seq tickets), and a
// fence that sank past every open span would cross its own thread's later
// plain accesses, inverting po and severing the commit -> <Qx> -> po ->
// plain-access happens-before chain the §5 protocols rest on.  Spans that
// DO touch x are short-lived gate bounces the runtime really did not wait
// for; sinking past them is the WF12 adjustment working as intended.
//
// Whole-store fences have no cover to discriminate by and keep the
// original behavior: they sink past every open span, settling at the
// first position where no transaction is open in any thread.
void sink_fences(std::vector<MergedEvent>& evs, const RecordSession& s) {
  std::vector<MergedEvent> fences, rest;
  std::vector<std::size_t> targets;  // insertion index of each fence in `rest`
  for (const MergedEvent& m : evs) {
    if (m.ev.kind != Ev::Fence) {
      rest.push_back(m);
      continue;
    }
    if (m.ev.cover >= 0) {
      // Split: one single-location fence event per covered location.  The
      // first carries version = 1 so assembly still counts ONE fence.
      bool first = true;
      for (std::int32_t x : s.fence_cover(m.ev.cover)) {
        MergedEvent f = m;
        f.ev.loc = x;
        f.ev.cover = kFenceCoverSingle;
        f.ev.version = first ? 1 : 0;
        first = false;
        fences.push_back(f);
        targets.push_back(rest.size());
      }
      if (first) {  // empty cover: keep the fence for accounting only
        MergedEvent f = m;
        f.ev.loc = -1;
        f.ev.cover = kFenceCoverSingle;
        f.ev.version = 1;
        fences.push_back(f);
        targets.push_back(rest.size());
      }
    } else {
      fences.push_back(m);
      targets.push_back(rest.size());
    }
  }
  if (fences.empty()) return;

  // Transaction spans (begin index, resolution index) over `rest`, with
  // the locations the transaction touches (transactional accesses only —
  // the same footprint WF12's cover check uses).
  struct Span {
    std::size_t begin, end;
    std::vector<std::int32_t> locs;
    bool touches(std::int32_t x) const {
      return std::find(locs.begin(), locs.end(), x) != locs.end();
    }
  };
  std::vector<Span> spans;
  struct OpenTxn {
    std::size_t begin;
    std::vector<std::int32_t> locs;
  };
  std::map<int, OpenTxn> open;  // thread -> open transaction
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const Event& e = rest[i].ev;
    const int th = rest[i].thread;
    if (e.kind == Ev::Begin) {
      open[th] = {i, {}};
    } else if (e.kind == Ev::Read || e.kind == Ev::Write) {
      auto it = open.find(th);
      if (it != open.end() && e.loc >= 0 &&
          std::find(it->second.locs.begin(), it->second.locs.end(), e.loc) ==
              it->second.locs.end())
        it->second.locs.push_back(e.loc);
    } else if (e.kind == Ev::Commit || e.kind == Ev::Abort) {
      auto it = open.find(th);
      if (it != open.end()) {
        spans.push_back({it->second.begin, i, std::move(it->second.locs)});
        open.erase(it);
      }
    }
  }

  // A fence inserted at index t has rest[0..t-1] before it; a span is open
  // across it iff begin < t <= end.  Sinking to end+1 may enter new spans,
  // so iterate to the (monotone, bounded) fixpoint.
  for (std::size_t fi = 0; fi < fences.size(); ++fi) {
    std::size_t& t = targets[fi];
    const bool single = fences[fi].ev.cover == kFenceCoverSingle;
    const std::int32_t x = fences[fi].ev.loc;
    bool moved = true;
    while (moved) {
      moved = false;
      for (const Span& sp : spans) {
        if (!(sp.begin < t && sp.end >= t)) continue;
        if (single && !sp.touches(x)) continue;
        t = sp.end + 1;
        moved = true;
      }
    }
  }

  // Rebuild: walk `rest`, interleaving fences at their targets.  Sinking
  // can carry an early fence past a later one's target, so order fences by
  // (target, original seq) — stable for equal targets.
  std::vector<std::size_t> order(fences.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return targets[a] != targets[b] ? targets[a] < targets[b] : a < b;
  });
  std::vector<MergedEvent> out;
  out.reserve(evs.size());
  std::size_t f = 0;
  for (std::size_t i = 0; i <= rest.size(); ++i) {
    while (f < order.size() && targets[order[f]] == i)
      out.push_back(fences[order[f++]]);
    if (i < rest.size()) out.push_back(rest[i]);
  }
  evs = std::move(out);
}

void append_events(model::Trace& t, const std::vector<MergedEvent>& evs,
                   const RecordSession& s, RecordedTrace::Meta* meta) {
  RecordedTrace::Meta scratch;
  RecordedTrace::Meta& m_ = meta ? *meta : scratch;
  std::map<int, int> open_begin;  // thread -> begin action name
  for (const MergedEvent& m : evs) {
    const Event& e = m.ev;
    switch (e.kind) {
      case Ev::Begin: {
        const int idx = t.append(model::make_begin(m.thread));
        open_begin[m.thread] = t[static_cast<std::size_t>(idx)].name;
        ++m_.txns;
        break;
      }
      case Ev::Commit:
      case Ev::Abort: {
        auto it = open_begin.find(m.thread);
        if (it == open_begin.end()) break;  // unmatched marker: drop
        if (e.kind == Ev::Commit) {
          t.append(model::make_commit(m.thread, it->second));
          ++m_.committed;
        } else {
          t.append(model::make_abort(m.thread, it->second));
          ++m_.aborted;
        }
        open_begin.erase(it);
        break;
      }
      case Ev::Read:
      case Ev::PlainRead:
        t.append(model::make_read(
            m.thread, e.loc, static_cast<model::Value>(e.value),
            Rational(static_cast<std::int64_t>(e.version))));
        ++(e.kind == Ev::Read ? m_.reads : m_.plain_reads);
        break;
      case Ev::Write:
      case Ev::PlainWrite:
        t.append(model::make_write(
            m.thread, e.loc, static_cast<model::Value>(e.value),
            Rational(static_cast<std::int64_t>(e.version))));
        ++(e.kind == Ev::Write ? m_.writes : m_.plain_writes);
        break;
      case Ev::Fence:
        if (e.cover == kFenceCoverSingle) {
          // Post-split scoped fence (sink_fences): one <Qx> for this
          // event's location; loc < 0 is an empty cover kept for counting.
          if (e.loc >= 0) t.append(model::make_qfence(m.thread, e.loc));
          if (e.version != 0) ++m_.fences;
          break;
        }
        if (e.cover >= 0) {
          // Domain-scoped fence: the runtime only waited for transactions
          // that can touch the recorded cover set, so the model gets one
          // <Qx> per covered location and nothing more.
          for (std::int32_t x : s.fence_cover(e.cover))
            t.append(model::make_qfence(m.thread, x));
        } else {
          // Whole-store fence (conservative §5 variant): one summary <Q*>
          // standing for a <Qx> on every location of the trace.
          t.append(model::make_qfence_all(m.thread));
        }
        ++m_.fences;
        break;
    }
  }
}

RecordedTrace assemble(const RecordSession& s) {
  RecordedTrace out;
  auto& meta = out.meta;

  std::vector<MergedEvent> evs;
  std::set<int> threads;
  for (const auto& rec : s.recorders()) {
    threads.insert(rec->thread_id());
    meta.buffered_reads += rec->buffered_reads();
    for (const Event& e : rec->events()) evs.push_back({e, rec->thread_id()});
  }
  std::sort(evs.begin(), evs.end(), [](const MergedEvent& a, const MergedEvent& b) {
    return a.ev.seq < b.ev.seq;
  });

  sink_fences(evs, s);

  meta.events = evs.size();
  meta.threads = static_cast<int>(threads.size());
  meta.num_locs = s.num_locs();
  meta.plain_order = stm::plain_order_name(stm::plain_order());

  out.trace = model::Trace::with_init(meta.num_locs);
  append_events(out.trace, evs, s, &meta);
  return out;
}

// ----- fence-bounded windowing ----------------------------------------

namespace {

using model::Action;
using model::Loc;
using model::Thread;
using model::Trace;

struct FenceGroup {
  std::size_t start, end;  // inclusive run of consecutive qfences, one thread
  Thread thread;
  bool full = false;          // covers every location of the trace
  std::vector<bool> covered;  // per-location <Qx> membership
};

std::vector<FenceGroup> find_fence_groups(const Trace& t) {
  const int nlocs = t.num_locs();
  std::vector<FenceGroup> groups;
  std::size_t i = 0;
  while (i < t.size()) {
    if (!t[i].is_qfence()) {
      ++i;
      continue;
    }
    FenceGroup g{i, i, t[i].thread, false, {}};
    g.covered.assign(static_cast<std::size_t>(nlocs), false);
    while (g.end < t.size() && t[g.end].is_qfence() && t[g.end].thread == g.thread) {
      if (t[g.end].loc >= 0) g.covered[static_cast<std::size_t>(t[g.end].loc)] = true;
      if (t[g.end].loc == model::kAllLocs)
        g.covered.assign(static_cast<std::size_t>(nlocs), true);
      ++g.end;
    }
    --g.end;
    g.full = std::find(g.covered.begin(), g.covered.end(), false) == g.covered.end();
    groups.push_back(g);
    i = g.end + 1;
  }
  return groups;
}

// Copies t[i] into `w`, renaming it (window names are fresh) and remapping
// resolution peers through `names` (old begin name -> new begin name).
void copy_action(Trace& w, const Trace& t, std::size_t i,
                 std::unordered_map<int, int>& names) {
  Action a = t[i];
  const int old_name = a.name;
  a.name = -1;
  if (a.is_resolution()) {
    auto it = names.find(a.peer);
    if (it != names.end()) a.peer = it->second;
  }
  const int idx = w.append(a);
  if (t[i].is_begin()) names[old_name] = w[static_cast<std::size_t>(idx)].name;
}

}  // namespace

WindowPlan cut_windows(const Trace& t, std::size_t min_window_events) {
  WindowPlan plan;
  const std::size_t n = t.size();
  const int nlocs = t.num_locs();

  // The source's initializing transaction is replaced by each window's own.
  std::size_t body_begin = 0;
  if (n > 0 && t[0].is_begin() && t[0].thread == model::kInitThread) {
    const int r = t.resolution_of(0);
    body_begin = r >= 0 ? static_cast<std::size_t>(r) + 1 : 0;
  }

  // open_at[p]: transactions open across position p (begin < p <= resolution;
  // live transactions stay open forever).  Validity (a) needs open_at == 0.
  std::vector<int> open_delta(n + 2, 0);
  for (std::size_t b : t.begins()) {
    const int r = t.resolution_of(b);
    open_delta[b + 1] += 1;
    if (r >= 0) open_delta[static_cast<std::size_t>(r) + 1] -= 1;
  }
  std::vector<int> open_at(n + 1, 0);
  int running = 0;
  for (std::size_t p = 0; p <= n; ++p) {
    running += open_delta[p];
    open_at[p] = running;
  }

  // Per-transaction touched-location sets (keyed by begin index).
  std::unordered_map<int, std::vector<bool>> touches;
  for (std::size_t i = 0; i < n; ++i) {
    if (!t[i].is_memory_access() || t.plain(i) || t[i].loc < 0) continue;
    auto& set = touches[t.txn_of(i)];
    if (set.empty()) set.assign(static_cast<std::size_t>(nlocs), false);
    set[static_cast<std::size_t>(t[i].loc)] = true;
  }
  auto txn_touches = [&](int begin_idx, Loc x) {
    auto it = touches.find(begin_idx);
    return it != touches.end() && it->second[static_cast<std::size_t>(x)];
  };

  // Dense thread ids.
  std::unordered_map<Thread, std::size_t> tid_of;
  Thread max_thread = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tid_of.emplace(t[i].thread, tid_of.size());
    max_thread = std::max(max_thread, t[i].thread);
  }
  const std::size_t nthreads = tid_of.size();
  const Thread carry_thread = max_thread + 1;

  // Publication (validity b): for each plain access i on x by thread s, the
  // smallest j > i, same thread, that commits a transaction touching x.
  // Backward sweep over per-(thread, loc) "next commit touching" state.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> pub_commit(n, kNone);
  {
    std::vector<std::vector<std::size_t>> next_commit(
        nthreads, std::vector<std::size_t>(static_cast<std::size_t>(nlocs), kNone));
    for (std::size_t i = n; i-- > 0;) {
      const Action& a = t[i];
      const std::size_t s = tid_of[a.thread];
      if (a.is_memory_access() && t.plain(i) && a.loc >= 0)
        pub_commit[i] = next_commit[s][static_cast<std::size_t>(a.loc)];
      if (a.is_commit()) {
        const int b = t.txn_of(i);
        for (Loc x = 0; x < nlocs; ++x)
          if (txn_touches(b, x)) next_commit[s][static_cast<std::size_t>(x)] = i;
      }
    }
  }
  // Privatization (validity c): the largest j < i, same thread, that begins
  // a transaction touching x.  Forward sweep.
  std::vector<std::size_t> priv_begin(n, kNone);
  {
    std::vector<std::vector<std::size_t>> prev_begin(
        nthreads, std::vector<std::size_t>(static_cast<std::size_t>(nlocs), kNone));
    for (std::size_t i = 0; i < n; ++i) {
      const Action& a = t[i];
      const std::size_t s = tid_of[a.thread];
      if (a.is_begin()) {
        for (Loc x = 0; x < nlocs; ++x)
          if (txn_touches(static_cast<int>(i), x))
            prev_begin[s][static_cast<std::size_t>(x)] = i;
      }
      if (a.is_memory_access() && t.plain(i) && a.loc >= 0)
        priv_begin[i] = prev_begin[s][static_cast<std::size_t>(a.loc)];
    }
  }

  // Plain accesses in index order (validity scans walk only these).
  std::vector<std::size_t> plain_accesses;
  for (std::size_t i = 0; i < n; ++i)
    if (t[i].is_memory_access() && t.plain(i)) plain_accesses.push_back(i);

  // First/last body access per location (transactional or plain, committed
  // or aborted).  A scoped fence group has no <Qy> for its uncovered
  // locations, so nothing orders accesses to y across the group: such a
  // group can only cut the trace if each uncovered location's accesses lie
  // entirely on one side (d).  This also covers locations that come into
  // existence after the fence (e.g. hash nodes a post-fence insert
  // allocates): all their accesses are post-group.
  constexpr std::size_t kNone2 = static_cast<std::size_t>(-1);
  std::vector<std::size_t> first_acc(static_cast<std::size_t>(nlocs), kNone2);
  std::vector<std::size_t> last_acc(static_cast<std::size_t>(nlocs), kNone2);
  for (std::size_t i = body_begin; i < n; ++i) {
    if (!t[i].is_memory_access() || t[i].loc < 0) continue;
    const auto y = static_cast<std::size_t>(t[i].loc);
    if (first_acc[y] == kNone2) first_acc[y] = i;
    last_acc[y] = i;
  }

  auto cut_valid = [&](const FenceGroup& g) {
    if (open_at[g.start] != 0) return false;
    // (b)/(c) for covered locations: the group's <Qx> orders published
    // pre-group and privatized post-group plain accesses through the fence,
    // and the fencing thread's own accesses by po through <Qx>.
    for (std::size_t i : plain_accesses) {
      if (t[i].loc < 0 || !g.covered[static_cast<std::size_t>(t[i].loc)])
        continue;  // uncovered: rule (d) below decides
      if (i < g.start) {
        // Published before the group, or po into the group's own fence.
        if (t[i].thread == g.thread) continue;
        if (pub_commit[i] == kNone || pub_commit[i] >= g.start) return false;
      } else if (i > g.end) {
        // Privatized after the group, or po out of the group's own fence.
        if (t[i].thread == g.thread) continue;
        if (priv_begin[i] == kNone || priv_begin[i] <= g.end) return false;
      }
    }
    // (d) for uncovered locations: no access on both sides — without a
    // <Qy> there is no edge to order a cross-cut pair on y, and no
    // exemption applies (not even the fencing thread's own po: its partner
    // on the other side may be any thread).
    for (std::size_t y = 0; y < static_cast<std::size_t>(nlocs); ++y) {
      if (g.covered[y]) continue;
      if (first_acc[y] == kNone2) continue;
      if (first_acc[y] < g.start && last_acc[y] > g.end) return false;
    }
    return true;
  };

  // Pick cuts greedily in index order, honoring the minimum window size.
  std::vector<FenceGroup> cuts;
  std::size_t window_start = body_begin;
  for (const FenceGroup& g : find_fence_groups(t)) {
    if (g.start < body_begin) continue;
    ++plan.cut_candidates;
    if (g.end + 1 - window_start < min_window_events) continue;
    if (!cut_valid(g)) continue;
    cuts.push_back(g);
    window_start = g.end + 1;
  }
  plan.cuts = cuts.size();

  // Materialize windows.  Window k spans (previous cut's start .. this
  // cut's end]; sharing the cut group gives adjacent windows their overlap.
  std::vector<std::pair<Rational, model::Value>> carry(
      static_cast<std::size_t>(nlocs), {Rational(0), 0});
  std::size_t carry_scanned = body_begin;  // carry reflects t[0, carry_scanned)

  for (std::size_t k = 0; k <= cuts.size(); ++k) {
    TraceWindow win;
    win.first = k == 0 ? body_begin : cuts[k - 1].start;
    win.last = k < cuts.size() ? cuts[k].end : (n == 0 ? 0 : n - 1);
    win.trace = Trace::with_init(nlocs);

    if (k > 0) {
      // Advance carry over the slice consumed by earlier windows: every
      // nonaborted write before the opening group is the visible state.
      while (carry_scanned < cuts[k - 1].start) {
        const std::size_t i = carry_scanned++;
        if (t[i].is_write() && !t.aborted(i))
          carry[static_cast<std::size_t>(t[i].loc)] = {t[i].ts, t[i].value};
      }
      // Sparse carry: only locations this window actually accesses need
      // their pre-cut state re-established.  An unaccessed location's carry
      // write would fulfil no read, join no race pair (races are
      // same-location), and add only an init->carry coherence edge — inert
      // for every verdict — while inflating each window by O(|store|).
      std::vector<bool> accessed(static_cast<std::size_t>(nlocs), false);
      for (std::size_t i = win.first; i <= win.last && i < n; ++i)
        if (t[i].is_memory_access() && t[i].loc >= 0)
          accessed[static_cast<std::size_t>(t[i].loc)] = true;
      std::vector<Loc> carried;
      for (Loc x = 0; x < nlocs; ++x)
        if (accessed[static_cast<std::size_t>(x)] &&
            carry[static_cast<std::size_t>(x)].first > Rational(0))
          carried.push_back(x);
      if (!carried.empty()) {
        const int b = win.trace.append(model::make_begin(carry_thread));
        const int bname = win.trace[static_cast<std::size_t>(b)].name;
        for (Loc x : carried) {
          const auto& [ts, v] = carry[static_cast<std::size_t>(x)];
          win.trace.append(model::make_write(carry_thread, x, v, ts));
        }
        win.trace.append(model::make_commit(carry_thread, bname));
        win.carried = carried.size();
      }
    }

    std::unordered_map<int, int> names;
    if (n > 0)
      for (std::size_t i = win.first; i <= win.last; ++i)
        copy_action(win.trace, t, i, names);
    plan.windows.push_back(std::move(win));
  }
  return plan;
}

}  // namespace mtx::record
