#include "record/assemble.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace mtx::record {

namespace {

struct Merged {
  Event ev;
  int thread;
};

// Sink each fence past the resolutions of all transactions open at its
// position (see header).  Fences are pulled out first and their insertion
// points computed against the *fence-free* event list, whose indices are
// stable: each fence's target only ever increases and is bounded by the
// list length, so the fixpoint terminates, and fences cannot perturb each
// other's spans (two concurrent fences inside one transaction both sink
// just past its resolution, keeping their relative order).
void sink_fences(std::vector<Merged>& evs) {
  std::vector<Merged> fences, rest;
  std::vector<std::size_t> targets;  // insertion index of each fence in `rest`
  for (const Merged& m : evs) {
    if (m.ev.kind == Ev::Fence) {
      fences.push_back(m);
      targets.push_back(rest.size());
    } else {
      rest.push_back(m);
    }
  }
  if (fences.empty()) return;

  // Transaction spans (begin index, resolution index) over `rest`.
  struct Span {
    std::size_t begin, end;
  };
  std::vector<Span> spans;
  std::map<int, std::size_t> open;  // thread -> begin index
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const Ev k = rest[i].ev.kind;
    if (k == Ev::Begin) {
      open[rest[i].thread] = i;
    } else if (k == Ev::Commit || k == Ev::Abort) {
      auto it = open.find(rest[i].thread);
      if (it != open.end()) {
        spans.push_back({it->second, i});
        open.erase(it);
      }
    }
  }

  // A fence inserted at index t has rest[0..t-1] before it; a span is open
  // across it iff begin < t <= end.  Sinking to end+1 may enter new spans,
  // so iterate to the (monotone, bounded) fixpoint.
  for (std::size_t& t : targets) {
    bool moved = true;
    while (moved) {
      moved = false;
      for (const Span& s : spans)
        if (s.begin < t && s.end >= t) {
          t = s.end + 1;
          moved = true;
        }
    }
  }

  // Rebuild: walk `rest`, interleaving fences at their targets.  Sinking
  // can carry an early fence past a later one's target, so order fences by
  // (target, original seq) — stable for equal targets.
  std::vector<std::size_t> order(fences.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return targets[a] != targets[b] ? targets[a] < targets[b] : a < b;
  });
  std::vector<Merged> out;
  out.reserve(evs.size());
  std::size_t f = 0;
  for (std::size_t i = 0; i <= rest.size(); ++i) {
    while (f < order.size() && targets[order[f]] == i)
      out.push_back(fences[order[f++]]);
    if (i < rest.size()) out.push_back(rest[i]);
  }
  evs = std::move(out);
}

}  // namespace

RecordedTrace assemble(const RecordSession& s) {
  RecordedTrace out;
  auto& meta = out.meta;

  std::vector<Merged> evs;
  std::set<int> threads;
  for (const auto& rec : s.recorders()) {
    threads.insert(rec->thread_id());
    meta.buffered_reads += rec->buffered_reads();
    for (const Event& e : rec->events()) evs.push_back({e, rec->thread_id()});
  }
  std::sort(evs.begin(), evs.end(),
            [](const Merged& a, const Merged& b) { return a.ev.seq < b.ev.seq; });

  sink_fences(evs);

  meta.events = evs.size();
  meta.threads = static_cast<int>(threads.size());
  meta.num_locs = s.num_locs();
  meta.plain_order = stm::plain_order_name(stm::plain_order());

  out.trace = model::Trace::with_init(meta.num_locs);
  std::map<int, int> open_begin;  // thread -> begin action name
  for (const Merged& m : evs) {
    const Event& e = m.ev;
    switch (e.kind) {
      case Ev::Begin: {
        const int idx = out.trace.append(model::make_begin(m.thread));
        open_begin[m.thread] = out.trace[static_cast<std::size_t>(idx)].name;
        ++meta.txns;
        break;
      }
      case Ev::Commit:
      case Ev::Abort: {
        auto it = open_begin.find(m.thread);
        if (it == open_begin.end()) break;  // unmatched marker: drop
        if (e.kind == Ev::Commit) {
          out.trace.append(model::make_commit(m.thread, it->second));
          ++meta.committed;
        } else {
          out.trace.append(model::make_abort(m.thread, it->second));
          ++meta.aborted;
        }
        open_begin.erase(it);
        break;
      }
      case Ev::Read:
      case Ev::PlainRead:
        out.trace.append(model::make_read(
            m.thread, e.loc, static_cast<model::Value>(e.value),
            Rational(static_cast<std::int64_t>(e.version))));
        ++(e.kind == Ev::Read ? meta.reads : meta.plain_reads);
        break;
      case Ev::Write:
      case Ev::PlainWrite:
        out.trace.append(model::make_write(
            m.thread, e.loc, static_cast<model::Value>(e.value),
            Rational(static_cast<std::int64_t>(e.version))));
        ++(e.kind == Ev::Write ? meta.writes : meta.plain_writes);
        break;
      case Ev::Fence:
        // The runtime fence covers every location (conservative §5 variant).
        for (int x = 0; x < meta.num_locs; ++x)
          out.trace.append(model::make_qfence(m.thread, x));
        ++meta.fences;
        break;
    }
  }
  return out;
}

}  // namespace mtx::record
