#include "record/stream.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "model/analysis.hpp"
#include "record/assemble.hpp"
#include "substrate/threading.hpp"

namespace mtx::record {

namespace {

bool is_access(Ev k) {
  return k == Ev::Read || k == Ev::Write || k == Ev::PlainRead ||
         k == Ev::PlainWrite;
}

void merge_into(ConformanceReport& out, const ConformanceReport& sub,
                const std::string& prefix) {
  for (const model::WfViolation& v : sub.wf.violations)
    out.wf.violations.push_back({v.rule, prefix + v.msg});
  out.l_races += sub.l_races;
  out.tx_races += sub.tx_races;
  out.mixed_race = out.mixed_race || sub.mixed_race;
  out.opaque = out.opaque && sub.opaque;
  out.opaque_committed = out.opaque_committed && sub.opaque_committed;
  out.consistent = out.consistent && sub.consistent;
}

}  // namespace

struct StreamConformance::Impl {
  RecordSession& session;
  std::vector<int> threads;  // slot -> model thread id
  StreamOptions opts;
  std::vector<EventRing*> rings;

  ThreadPool pool;
  std::atomic<bool> done{false};

  // Cutter-private (single consumer thread; read by finish() after join).
  std::vector<std::vector<MergedEvent>> cur;  // slot's in-progress epoch
  std::vector<std::deque<std::vector<MergedEvent>>> marked;  // completed epochs
  struct LocState {
    std::uint64_t version = 0;
    stm::word_t value = 0;
  };
  std::vector<LocState> state;  // by location id: visible at last boundary
  std::unordered_map<int, std::vector<Event>> open_writes;  // thread -> buffer
  std::vector<MergedEvent> all_events;  // compare_posthoc keeps everything
  std::vector<std::size_t> burst_ends;  // all_events offset after each segment
  std::size_t segments = 0;
  std::size_t checked_events = 0;
  std::size_t max_backlog = 0;

  // Shared with checker tasks.
  std::mutex mu;
  StreamReport rep;

  bool finished = false;
  StreamReport final_rep;

  std::thread cutter;  // last member: started after everything else exists

  Impl(RecordSession& s, std::vector<int> th, StreamOptions o,
       std::vector<EventRing*> r)
      : session(s),
        threads(std::move(th)),
        opts(std::move(o)),
        rings(std::move(r)),
        pool(std::max<std::size_t>(1, opts.checkers)),
        cur(rings.size()),
        marked(rings.size()) {
    rep.merged.config = opts.cfg.name;
    rep.merged.opaque = true;
    rep.merged.opaque_committed = true;
    rep.merged.consistent = true;
    cutter = std::thread([this] { run(); });
  }

  void apply_write(const Event& e) {
    if (e.loc < 0) return;
    const auto x = static_cast<std::size_t>(e.loc);
    if (state.size() <= x) state.resize(x + 1);
    // Version allocation order is memory store order (the recorder bumps the
    // per-location counter under the location's spinlock together with the
    // store), so the highest nonaborted version is the value memory holds.
    if (e.version >= state[x].version) state[x] = {e.version, e.value};
  }

  // Replay the segment through the visible-state rule: plain writes apply
  // immediately, transactional writes buffer until their resolution (commit
  // applies, abort drops — the runtime rolled those stores back).
  void advance_state(const std::vector<MergedEvent>& evs) {
    for (const MergedEvent& m : evs) {
      switch (m.ev.kind) {
        case Ev::Begin:
        case Ev::Abort:
          open_writes[m.thread].clear();
          break;
        case Ev::Write:
          open_writes[m.thread].push_back(m.ev);
          break;
        case Ev::Commit:
          for (const Event& w : open_writes[m.thread]) apply_write(w);
          open_writes[m.thread].clear();
          break;
        case Ev::PlainWrite:
          apply_write(m.ev);
          break;
        default:
          break;
      }
    }
  }

  // Seal one segment: merge, synthesize the sparse carry from tracked state,
  // convert to a model trace, and ship the check to the pool.
  void seal(std::vector<MergedEvent> evs) {
    const std::size_t seg = segments++;
    if (evs.empty()) return;
    std::sort(evs.begin(), evs.end(), [](const MergedEvent& a, const MergedEvent& b) {
      return a.ev.seq < b.ev.seq;
    });
    if (opts.compare_posthoc) {
      all_events.insert(all_events.end(), evs.begin(), evs.end());
      burst_ends.push_back(all_events.size());
    }
    checked_events += evs.size();

    const int nlocs = session.num_locs();
    std::vector<char> accessed(static_cast<std::size_t>(nlocs), 0);
    int max_thread = 0;
    for (const MergedEvent& m : evs) {
      max_thread = std::max(max_thread, m.thread);
      if (is_access(m.ev.kind) && m.ev.loc >= 0 && m.ev.loc < nlocs)
        accessed[static_cast<std::size_t>(m.ev.loc)] = 1;
    }

    model::Trace t = model::Trace::with_init(nlocs);
    if (opts.synthesize_carry) {
      // Sparse carry: only locations this segment touches and that carry
      // pre-segment state (version > 0; version-0 locations are still on the
      // init write).  Same rule as the window carry in cut_windows.
      std::vector<std::size_t> carried;
      for (std::size_t x = 0; x < accessed.size(); ++x)
        if (accessed[x] && x < state.size() && state[x].version > 0)
          carried.push_back(x);
      if (!carried.empty()) {
        const int ct = max_thread + 1;
        const int b = t.append(model::make_begin(ct));
        const int bname = t[static_cast<std::size_t>(b)].name;
        for (std::size_t x : carried)
          t.append(model::make_write(
              ct, static_cast<model::Loc>(x),
              static_cast<model::Value>(state[x].value),
              Rational(static_cast<std::int64_t>(state[x].version))));
        t.append(model::make_commit(ct, bname));
      }
      advance_state(evs);
    }

    sink_fences(evs, session);
    append_events(t, evs, session, nullptr);

    pool.submit([this, seg, tr = std::move(t)] { check(seg, tr); });
  }

  // Checker task: fence-bounded windows through one chained analysis (the
  // incremental context carries relation/hb machinery window to window),
  // then merge the segment verdict into the stream report.
  void check(std::size_t seg, const model::Trace& t) {
    ConformanceReport segrep;
    segrep.config = opts.cfg.name;
    segrep.opaque = true;
    segrep.opaque_committed = true;
    segrep.consistent = true;
    std::size_t nwindows = 0;
    try {
      WindowPlan plan = cut_windows(t, opts.min_window_events);
      nwindows = plan.windows.size();
      model::ChainedAnalysis chain(opts.cfg);
      for (std::size_t i = 0; i < plan.windows.size(); ++i)
        merge_into(segrep, check_conformance(chain.advance(plan.windows[i].trace)),
                   "[segment " + std::to_string(seg) + " window " +
                       std::to_string(i) + "] ");
    } catch (const std::exception& e) {
      segrep.wf.violations.push_back(
          {0, "[segment " + std::to_string(seg) +
                  "] checker exception: " + e.what()});
    }
    const bool opq =
        opts.require_full_opacity ? segrep.opaque : segrep.opaque_committed;
    const bool segok =
        segrep.wf.ok() && segrep.l_races == 0 && !segrep.mixed_race && opq;

    std::lock_guard<std::mutex> g(mu);
    rep.windows += nwindows;
    if (!segok) ++rep.nonconformant;
    rep.merged.actions += t.size();
    merge_into(rep.merged, segrep, "");
  }

  void run() {
    std::vector<RingItem> buf;
    for (;;) {
      const bool fin = done.load(std::memory_order_acquire);
      bool progress = false;
      for (std::size_t i = 0; i < rings.size(); ++i) {
        max_backlog = std::max(max_backlog, rings[i]->size());
        buf.clear();
        rings[i]->drain(buf);
        if (!buf.empty()) progress = true;
        for (const RingItem& it : buf) {
          if (it.is_mark) {
            marked[i].push_back(std::move(cur[i]));
            cur[i].clear();
          } else {
            cur[i].push_back({it.ev, threads[i]});
          }
        }
      }
      // Seal every epoch all rings have completed.
      for (;;) {
        bool all = true;
        for (const auto& m : marked)
          if (m.empty()) {
            all = false;
            break;
          }
        if (!all) break;
        std::vector<MergedEvent> evs;
        for (auto& m : marked) {
          evs.insert(evs.end(), m.front().begin(), m.front().end());
          m.pop_front();
        }
        seal(std::move(evs));
      }
      if (fin && !progress) {
        // Producers are gone: whatever remains (completed epochs missing a
        // peer's mark, or events past the final mark) is one last quiescent
        // segment.
        std::vector<MergedEvent> evs;
        for (auto& m : marked)
          for (auto& v : m) evs.insert(evs.end(), v.begin(), v.end());
        for (auto& v : cur) evs.insert(evs.end(), v.begin(), v.end());
        if (!evs.empty()) seal(std::move(evs));
        return;
      }
      if (!progress) std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
};

StreamConformance::StreamConformance(RecordSession& session,
                                     std::vector<int> producer_threads,
                                     StreamOptions opts) {
  rings_.reserve(producer_threads.size());
  std::vector<EventRing*> raw;
  for (std::size_t i = 0; i < producer_threads.size(); ++i) {
    rings_.push_back(std::make_unique<EventRing>(opts.ring_capacity));
    raw.push_back(rings_.back().get());
  }
  impl_ = std::make_unique<Impl>(session, std::move(producer_threads),
                                 std::move(opts), std::move(raw));
}

StreamConformance::~StreamConformance() {
  if (impl_ && impl_->cutter.joinable()) {
    impl_->done.store(true, std::memory_order_release);
    impl_->cutter.join();
  }
}

StreamReport StreamConformance::finish() {
  if (impl_->finished) return impl_->final_rep;
  impl_->done.store(true, std::memory_order_release);
  if (impl_->cutter.joinable()) impl_->cutter.join();
  impl_->pool.wait_idle();

  StreamReport r;
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    r = impl_->rep;
  }
  r.segments = impl_->segments;
  r.checked_events = impl_->checked_events;
  r.max_backlog = impl_->max_backlog;
  for (const auto& ring : rings_) r.ring_dropped += ring->dropped();
  r.overflow = r.ring_dropped > 0;

  if (impl_->opts.compare_posthoc) {
    // The oracle: the very same events, reassembled and judged by the
    // post-hoc windowed checker.  On a conformant run the merged streaming
    // verdict and this one must be byte-identical.
    WindowedOptions wopts;
    wopts.min_window_events = impl_->opts.min_window_events;
    const auto judge = [&](std::vector<MergedEvent> evs) {
      std::sort(evs.begin(), evs.end(),
                [](const MergedEvent& a, const MergedEvent& b) {
                  return a.ev.seq < b.ev.seq;
                });
      sink_fences(evs, impl_->session);
      model::Trace t = model::Trace::with_init(impl_->session.num_locs());
      append_events(t, evs, impl_->session, nullptr);
      return check_conformance_windowed(t, impl_->opts.cfg, wopts);
    };
    if (impl_->opts.synthesize_carry) {
      // Always-on level: the stream is one gapless recorded execution, so
      // it reassembles into a single trace — the strongest form of the
      // oracle, since carry synthesis must not change any verdict.
      r.posthoc = judge(std::move(impl_->all_events));
    } else {
      // Sampled stream: disjoint recorded bursts with unrecorded activity
      // between them.  Concatenating them would judge an artifact — a later
      // burst's replay has no hb edge from an earlier burst's transactions,
      // so the monolith manufactures a mixed race no real execution had.
      // The oracle instead judges each burst independently and merges,
      // exactly the granularity the cutter committed to.
      r.posthoc.config = impl_->opts.cfg.name;
      r.posthoc.opaque = true;
      r.posthoc.opaque_committed = true;
      r.posthoc.consistent = true;
      r.posthoc.windows = 0;
      std::size_t begin = 0;
      for (const std::size_t end : impl_->burst_ends) {
        const ConformanceReport sub = judge(
            {impl_->all_events.begin() + static_cast<std::ptrdiff_t>(begin),
             impl_->all_events.begin() + static_cast<std::ptrdiff_t>(end)});
        r.posthoc.actions += sub.actions;
        r.posthoc.txns += sub.txns;
        r.posthoc.committed += sub.committed;
        r.posthoc.aborted += sub.aborted;
        r.posthoc.windows += sub.windows;
        r.posthoc.window_cuts += sub.window_cuts;
        merge_into(r.posthoc, sub, "");
        begin = end;
      }
    }
    r.posthoc_checked = true;
    r.posthoc_match = r.merged.verdict() == r.posthoc.verdict();
  }

  impl_->final_rep = r;
  impl_->finished = true;
  return r;
}

std::string StreamReport::str() const {
  std::string s;
  s += "segments=" + std::to_string(segments) +
       " windows=" + std::to_string(windows) +
       " checked_events=" + std::to_string(checked_events) +
       " nonconformant=" + std::to_string(nonconformant) +
       " ring_dropped=" + std::to_string(ring_dropped) +
       " max_backlog=" + std::to_string(max_backlog) + "\n";
  s += merged.verdict() + "\n";
  if (posthoc_checked)
    s += std::string("posthoc_match=") + (posthoc_match ? "yes" : "NO") + "\n";
  if (!merged.wf.ok()) s += merged.wf.str();
  return s;
}

}  // namespace mtx::record
