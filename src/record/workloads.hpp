// Recordable workload generators: the transactional containers driven as
// seeded multi-threaded stress runs under a RecordSession, producing
// model::Traces for conformance checking.  Every workload runs on any
// registered backend through the StmBackend interface — workload × backend
// × thread-count is the campaign's recorded-execution job grid.
//
// Conventions making the recordings model-clean:
//   - Construction-time plain stores happen inside a synthetic committed
//     transaction on the main thread, standing in for the thread-creation
//     ordering the model cannot see (workers are only spawned afterwards).
//   - Worker thread ids are 1..threads (0 is the main/setup thread).
//   - All cross-thread data flows through transactions, except the
//     privatization workload's audited plain phase, which is protected by
//     the §5 flag + quiescence-fence protocol.
#pragma once

#include <string>
#include <vector>

#include "record/assemble.hpp"
#include "stm/backend.hpp"

namespace mtx::record {

struct WorkloadOptions {
  std::size_t threads = 2;   // worker threads (>= 1)
  std::uint64_t seed = 1;
  int ops_per_thread = 8;
};

struct RecordedRun {
  RecordedTrace rec;
  bool invariant_ok = false;  // the workload's own correctness check
  std::string workload;
  std::string backend;
};

// {"bank", "bank_priv", "tlist", "thash", "tqueue"}.
const std::vector<std::string>& workload_names();

// Runs the named workload on `stm` under a fresh RecordSession and returns
// the assembled trace.  Throws std::invalid_argument for unknown names.
RecordedRun run_recorded_workload(const std::string& workload,
                                  stm::StmBackend& stm,
                                  const WorkloadOptions& opts = {});

}  // namespace mtx::record
