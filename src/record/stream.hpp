// Always-on streaming conformance: judge an execution WHILE it runs.
//
// The sampled pipeline (kv/workload.hpp) records whole rounds into fresh
// RecordSessions and judges them after the run.  Streaming keeps ONE
// continuous RecordSession and moves the checker into the execution:
//
//   producers    each recording thread streams its events through a
//                lock-free EventRing (record/ring.hpp) instead of a
//                post-hoc log, and publishes an epoch mark at every
//                quiescent round barrier;
//   cutter       one consumer thread drains all rings concurrently with
//                traffic.  When every ring has yielded mark(e) the events
//                of epoch e form a *segment*: the barrier guarantees no
//                transaction spans it and every pre-mark ticket precedes
//                every post-mark ticket, so the segment boundary is as
//                sound a cut as a sampled session boundary.  The cutter
//                merges the segment in seq order, sinks fences
//                (record/assemble.hpp), synthesizes the sparse state-carry
//                transaction from its own running state, cuts the segment
//                at interior quiescence fences, and ships the check;
//   checkers     a small ThreadPool judges segments as they seal — each
//                through one model::ChainedAnalysis whose context carries
//                window to window — while the workload keeps running.
//
// State carry across segments.  The cutter tracks the visible value and
// write version of every location by replaying the event stream: plain
// writes apply immediately; transactional writes buffer per thread and
// apply on Commit (highest version wins — version allocation order is
// memory store order) or drop on Abort.  At a segment boundary all
// transactions are resolved, so the tracked state is exactly memory, and
// the next segment opens with a synthetic committed transaction re-writing
// the tracked (value, version) of each location the segment touches —
// sparse, like the window carry: untouched locations fulfil no read and
// join no race, so they are omitted.  Segment 0 needs no carry; the
// workload records its preload state once (KvStore::replay_state_plain) as
// the first recorded transaction, which both seeds the trace and teaches
// the cutter the full state.
//
// Overflow is loud, never silent: a full ring drops events and counts
// them; any drop poisons the run (StreamReport::ok() false) because the
// judged segments would have reads-from holes.  Epoch marks cannot be
// dropped (EventRing::push_mark), so sealing — and the failure report —
// survive overflow.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/model_config.hpp"
#include "record/conformance.hpp"
#include "record/ring.hpp"

namespace mtx::record {

struct StreamOptions {
  std::size_t ring_capacity = 1u << 14;   // slots per producer ring
  std::size_t min_window_events = 64;     // interior cut threshold
  std::size_t checkers = 2;               // checker pool threads (min 1)
  model::ModelConfig cfg = model::ModelConfig::implementation();
  // Hold segments to full opacity (true) or the committed-subsystem
  // projection (false — backends with zombie reads, Example 3.4 class).
  bool require_full_opacity = true;
  // Keep every drained event and, at finish(), reassemble and judge it
  // post-hoc with the windowed checker — the equivalence oracle (streaming
  // and post-hoc verdicts must match byte for byte).  A gapless stream
  // (synthesize_carry on) reassembles into one whole trace; a sampled one
  // is judged burst by burst.
  bool compare_posthoc = false;
  // Synthesize the sparse state-carry transaction at each segment boundary
  // from the cutter's tracked state.  Requires the cutter to have seen every
  // write since the stream began; a producer that samples rounds (recording
  // only every Nth) must turn this off and instead anchor each segment with
  // its own recorded state replay, or the carry would re-write stale
  // versions that collide with the replay's.
  bool synthesize_carry = true;
};

struct StreamReport {
  // Pipeline shape.
  std::size_t segments = 0;        // epochs sealed and judged
  std::size_t windows = 0;         // fence-bounded windows across segments
  std::size_t checked_events = 0;  // recorded events shipped to checkers
  std::size_t nonconformant = 0;   // segments whose verdict failed

  // Capture health.
  std::uint64_t ring_dropped = 0;  // events lost to full rings (all rings)
  bool overflow = false;           // any drop anywhere
  std::size_t max_backlog = 0;     // deepest ring fill the cutter observed

  // Merged judgment across all segments (the windowed checker's merge: WF
  // violations concatenate, races add, opacity/consistency AND).
  ConformanceReport merged;

  // Post-hoc oracle (compare_posthoc only).
  bool posthoc_checked = false;
  bool posthoc_match = false;      // merged.verdict() == posthoc.verdict()
  ConformanceReport posthoc;

  bool ok() const { return !overflow && nonconformant == 0; }
  std::string str() const;
};

// The streaming pipeline for one execution.  Construction starts the cutter
// and checker threads; producers stream through ring(slot); finish() (after
// every producer has stopped pushing and published its final mark) drains
// the remainder, joins, and returns the report.
class StreamConformance {
 public:
  // One ring per producer; `producer_threads[slot]` is the model thread id
  // stamped on slot's events.  Rings exist for the object's whole lifetime,
  // so producers may register with their ThreadRecorder at any time.
  StreamConformance(RecordSession& session, std::vector<int> producer_threads,
                    StreamOptions opts = {});
  ~StreamConformance();
  StreamConformance(const StreamConformance&) = delete;
  StreamConformance& operator=(const StreamConformance&) = delete;

  std::size_t producers() const { return rings_.size(); }
  EventRing& ring(std::size_t slot) { return *rings_[slot]; }

  // Call once, after all producers stopped (e.g. the worker team joined).
  // Idempotent; the second call returns the same report.
  StreamReport finish();

 private:
  struct Impl;
  std::vector<std::unique_ptr<EventRing>> rings_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mtx::record
