#include "record/recorder.hpp"

#include <algorithm>
#include <cassert>

#include "record/ring.hpp"
#include "stm/quiesce.hpp"

namespace mtx::record {

// ----- RecordSession ---------------------------------------------------

ThreadRecorder* RecordSession::attach(int thread_id) {
  std::lock_guard<std::mutex> g(recorders_mu_);
  recorders_.push_back(std::make_unique<ThreadRecorder>(*this, thread_id));
  return recorders_.back().get();
}

int RecordSession::num_locs() const {
  std::shared_lock<std::shared_mutex> g(loc_mu_);
  return static_cast<int>(loc_of_.size());
}

int RecordSession::loc_id(const stm::Cell& c) const {
  std::shared_lock<std::shared_mutex> g(loc_mu_);
  auto it = loc_of_.find(&c);
  return it == loc_of_.end() ? -1 : static_cast<int>(it->second);
}

std::int32_t RecordSession::add_fence_cover(std::vector<std::int32_t> cover) {
  std::lock_guard<std::mutex> g(covers_mu_);
  fence_covers_.push_back(std::move(cover));
  return static_cast<std::int32_t>(fence_covers_.size()) - 1;
}

const std::vector<std::int32_t>& RecordSession::fence_cover(
    std::int32_t idx) const {
  std::lock_guard<std::mutex> g(covers_mu_);
  return fence_covers_[static_cast<std::size_t>(idx)];
}

RecordSession::LocShadow& RecordSession::shadow_of(const stm::Cell& c) {
  {
    std::shared_lock<std::shared_mutex> g(loc_mu_);
    auto it = loc_of_.find(&c);
    if (it != loc_of_.end()) return shadows_[static_cast<std::size_t>(it->second)];
  }
  std::unique_lock<std::shared_mutex> g(loc_mu_);
  auto it = loc_of_.find(&c);
  if (it != loc_of_.end()) return shadows_[static_cast<std::size_t>(it->second)];
  const auto id = static_cast<std::int32_t>(shadows_.size());
  shadows_.emplace_back();
  shadows_.back().loc = id;
  loc_of_.emplace(&c, id);
  return shadows_.back();
}

// ----- ThreadRecorder --------------------------------------------------

void ThreadRecorder::emit(const Event& e) {
  if (!ring_) {
    log_.push_back(e);
    return;
  }
  // Streaming: stage the event one deep so retract_read can still take the
  // last read back before the consumer sees it; push the previous stage.
  if (pending_valid_) ring_->push(pending_);
  pending_ = e;
  pending_valid_ = true;
}

void ThreadRecorder::stream_to(EventRing* ring) {
  flush();
  ring_ = ring;
}

void ThreadRecorder::flush() {
  if (ring_ && pending_valid_) {
    ring_->push(pending_);
    pending_valid_ = false;
  }
}

void ThreadRecorder::mark_epoch(std::uint64_t epoch) {
  flush();
  if (ring_) ring_->push_mark(epoch);
}

void ThreadRecorder::push_marker(Ev kind) {
  Event e;
  e.seq = session_.next_seq();
  e.kind = kind;
  emit(e);
}

void ThreadRecorder::on_begin() { push_marker(Ev::Begin); }
void ThreadRecorder::on_commit() { push_marker(Ev::Commit); }
void ThreadRecorder::on_abort() { push_marker(Ev::Abort); }
void ThreadRecorder::on_fence() { push_marker(Ev::Fence); }

void ThreadRecorder::on_fence_scoped(const stm::QuiesceDomain& d) {
  // Resolve the domain's cells to location ids *eagerly* (shadow_of assigns
  // an id on first touch), so a cell the domain owns but no access has named
  // yet is still covered.  A scoped fence with no enumerator covers nothing
  // — the model simply gets no QFence edges from it, which under-claims what
  // the runtime guaranteed and is therefore sound.
  std::vector<std::int32_t> cover;
  if (d.cells)
    d.cells([&](const stm::Cell& c) {
      cover.push_back(session_.shadow_of(c).loc);
    });
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  Event e;
  e.seq = session_.next_seq();
  e.kind = Ev::Fence;
  e.cover = session_.add_fence_cover(std::move(cover));
  emit(e);
}

stm::word_t ThreadRecorder::tx_read(const stm::Cell& c) {
  auto& sh = session_.shadow_of(c);
  RecordSession::lock(sh);
  const stm::word_t v = c.raw().load(std::memory_order_acquire);
  const Event e{session_.next_seq(), Ev::Read, sh.loc, v, sh.version};
  RecordSession::unlock(sh);
  emit(e);
  return v;
}

void ThreadRecorder::retract_read() {
  if (ring_) {
    assert(pending_valid_ && (pending_.kind == Ev::Read ||
                              pending_.kind == Ev::PlainRead));
    pending_valid_ = false;
    return;
  }
  assert(!log_.empty() &&
         (log_.back().kind == Ev::Read || log_.back().kind == Ev::PlainRead));
  log_.pop_back();
}

void ThreadRecorder::tx_publish(stm::Cell& c, stm::word_t v) {
  auto& sh = session_.shadow_of(c);
  RecordSession::lock(sh);
  const std::uint64_t ver = ++sh.next;
  sh.version = ver;
  c.raw().store(v, std::memory_order_release);
  const Event e{session_.next_seq(), Ev::Write, sh.loc, v, ver};
  RecordSession::unlock(sh);
  emit(e);
}

std::uint64_t ThreadRecorder::loc_version(const stm::Cell& c) {
  auto& sh = session_.shadow_of(c);
  RecordSession::lock(sh);
  const std::uint64_t ver = sh.version;
  RecordSession::unlock(sh);
  return ver;
}

void ThreadRecorder::tx_unpublish(stm::Cell& c, stm::word_t v,
                                  std::uint64_t version) {
  auto& sh = session_.shadow_of(c);
  RecordSession::lock(sh);
  c.raw().store(v, std::memory_order_release);
  sh.version = version;
  RecordSession::unlock(sh);
}

stm::word_t ThreadRecorder::plain_load(const stm::Cell& c) {
  auto& sh = session_.shadow_of(c);
  RecordSession::lock(sh);
  const stm::word_t v = c.raw().load(stm::plain_load_order());
  const Event e{session_.next_seq(), Ev::PlainRead, sh.loc, v, sh.version};
  RecordSession::unlock(sh);
  emit(e);
  return v;
}

void ThreadRecorder::plain_store(stm::Cell& c, stm::word_t v) {
  auto& sh = session_.shadow_of(c);
  RecordSession::lock(sh);
  const std::uint64_t ver = ++sh.next;
  sh.version = ver;
  c.raw().store(v, stm::plain_store_order());
  const Event e{session_.next_seq(), Ev::PlainWrite, sh.loc, v, ver};
  RecordSession::unlock(sh);
  emit(e);
}

}  // namespace mtx::record
