#include "record/workloads.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <thread>

#include "containers/bank.hpp"
#include "containers/thash.hpp"
#include "containers/tlist.hpp"
#include "containers/tqueue.hpp"
#include "substrate/rng.hpp"
#include "substrate/threading.hpp"

namespace mtx::record {

namespace {

using stm::StmBackend;
using stm::word_t;

// Bank transfers with occasional explicit aborts (so recorded traces carry
// Abort actions and rolled-back writes) and periodic transactional audits.
RecordedRun bank_workload(StmBackend& stm, const WorkloadOptions& o) {
  RecordSession session;
  constexpr std::size_t kAccounts = 8;
  constexpr std::int64_t kInitial = 100;
  std::optional<containers::Bank<StmBackend>> bank;
  {
    ScopedRecorder main_rec(session, 0);
    main_rec.rec().synthetic_begin();
    bank.emplace(stm, kAccounts, kInitial);
    main_rec.rec().synthetic_commit();
  }

  std::atomic<bool> audits_ok{true};
  run_team(o.threads, [&](std::size_t tid) {
    ScopedRecorder rec(session, static_cast<int>(tid) + 1);
    Rng rng(o.seed * 1000 + tid);
    for (int i = 0; i < o.ops_per_thread; ++i) {
      const auto from = static_cast<std::size_t>(rng.below(kAccounts));
      const auto to =
          (from + 1 + static_cast<std::size_t>(rng.below(kAccounts - 1))) %
          kAccounts;
      const auto amt = rng.range(1, 9);
      if (rng.chance(1, 4)) {
        // Doomed transfer: writes real garbage, then aborts explicitly.
        stm.atomically([&](auto& tx) {
          const auto f = static_cast<std::int64_t>(tx.read(bank->account(from)));
          tx.write(bank->account(from), static_cast<word_t>(f - 1000));
          tx.user_abort();
        });
      } else {
        bank->transfer(from, to, amt);
      }
      if (i % 4 == 3 && bank->total() != bank->expected_total())
        audits_ok = false;
    }
  });

  RecordedRun run;
  {
    ScopedRecorder main_rec(session, 0);
    run.invariant_ok =
        audits_ok.load() && bank->total() == bank->expected_total();
  }
  run.rec = assemble(session);
  run.workload = "bank";
  return run;
}

// The §5 privatization protocol: a privatizer transactionally closes the
// accounts, fences, audits (and rewrites) them with *plain* accesses, then
// reopens; mutators transfer only while the flag is open, re-checked inside
// each transaction.  The recorded trace exercises QFence actions, HBCQ/HBQB
// ordering, and mixed plain/transactional accesses that must NOT race.
RecordedRun bank_priv_workload(StmBackend& stm, const WorkloadOptions& o) {
  RecordSession session;
  constexpr std::size_t kAccounts = 4;
  constexpr std::int64_t kInitial = 100;
  const auto expected =
      static_cast<std::int64_t>(kAccounts) * kInitial;
  std::optional<std::vector<stm::Cell>> cells;
  stm::Cell flag;  // 0 = open, 1 = privatized; starts 0 (no store needed)
  {
    ScopedRecorder main_rec(session, 0);
    main_rec.rec().synthetic_begin();
    cells.emplace(kAccounts);
    for (auto& c : *cells) c.plain_store(static_cast<word_t>(kInitial));
    main_rec.rec().synthetic_commit();
  }
  auto& accounts = *cells;

  std::atomic<bool> audits_ok{true};
  run_team(o.threads, [&](std::size_t tid) {
    ScopedRecorder rec(session, static_cast<int>(tid) + 1);
    Rng rng(o.seed * 7777 + tid);
    auto transfer = [&] {
      const auto from = static_cast<std::size_t>(rng.below(kAccounts));
      const auto to =
          (from + 1 + static_cast<std::size_t>(rng.below(kAccounts - 1))) %
          kAccounts;
      const auto amt = static_cast<word_t>(rng.range(1, 9));
      stm.atomically([&](auto& tx) {
        if (tx.read(flag) != 0) return;  // closed: retry later as a no-op
        const word_t f = tx.read(accounts[from]);
        const word_t t = tx.read(accounts[to]);
        tx.write(accounts[from], f - amt);
        tx.write(accounts[to], t + amt);
      });
      // Recording is an oracle mode: yielding keeps the threads interleaved
      // even on few-core hosts, so fences land *between* mutator ops and the
      // recorded trace exercises genuine concurrency phases.
      std::this_thread::yield();
    };
    const bool privatizer = tid + 1 == o.threads;  // last worker
    if (privatizer) {
      // Rounds scale with the op budget so long recordings carry many
      // quiescence fences (each round is a window-cut candidate for the
      // fence-bounded checker); small runs keep the historical 2 rounds.
      // Transfers between rounds pace the privatizer against the mutators,
      // spreading fences across the whole recording instead of bunching
      // them wherever the scheduler parks this thread.
      const int rounds = std::max(2, o.ops_per_thread / 4);
      const int spacing = std::max(0, (o.ops_per_thread - rounds) / rounds);
      for (int round = 0; round < rounds; ++round) {
        stm.atomically([&](auto& tx) { tx.write(flag, 1); });
        stm.quiesce();
        // Plain phase: we own the accounts now.
        std::int64_t sum = 0;
        for (auto& c : accounts)
          sum += static_cast<std::int64_t>(c.plain_load());
        if (sum != expected) audits_ok = false;
        // A genuine plain *write* into the privatized region.
        accounts[0].plain_store(accounts[0].plain_load());
        stm.atomically([&](auto& tx) { tx.write(flag, 0); });
        for (int k = 0; k < spacing; ++k) transfer();
      }
      return;
    }
    for (int i = 0; i < o.ops_per_thread; ++i) transfer();
  });

  RecordedRun run;
  {
    ScopedRecorder main_rec(session, 0);
    std::int64_t sum = 0;
    stm.atomically([&](auto& tx) {
      sum = 0;
      // Reading the flag first gives this audit a transactional dependency
      // on the privatizer's reopen, which (with the privatizer's program
      // order) happens-before-orders its plain audit writes before these
      // reads — the model has no thread-join edge to rely on.
      (void)tx.read(flag);
      for (auto& c : accounts) sum += static_cast<std::int64_t>(tx.read(c));
    });
    run.invariant_ok = audits_ok.load() && sum == expected;
  }
  run.rec = assemble(session);
  run.workload = "bank_priv";
  return run;
}

RecordedRun tlist_workload(StmBackend& stm, const WorkloadOptions& o) {
  RecordSession session;
  constexpr std::int64_t kKeys = 12;
  std::optional<containers::TList<StmBackend>> list;
  {
    ScopedRecorder main_rec(session, 0);
    main_rec.rec().synthetic_begin();
    list.emplace(stm);
    main_rec.rec().synthetic_commit();
  }

  run_team(o.threads, [&](std::size_t tid) {
    ScopedRecorder rec(session, static_cast<int>(tid) + 1);
    Rng rng(o.seed * 31 + tid);
    for (int i = 0; i < o.ops_per_thread; ++i) {
      const auto key = static_cast<std::int64_t>(rng.below(kKeys));
      switch (rng.below(3)) {
        case 0: list->insert(key); break;
        case 1: list->remove(key); break;
        default: list->contains(key);
      }
    }
  });

  RecordedRun run;
  {
    ScopedRecorder main_rec(session, 0);
    std::size_t present = 0;
    for (std::int64_t k = 0; k < kKeys; ++k)
      if (list->contains(k)) ++present;
    run.invariant_ok = present == list->size();
  }
  run.rec = assemble(session);
  run.workload = "tlist";
  return run;
}

RecordedRun thash_workload(StmBackend& stm, const WorkloadOptions& o) {
  RecordSession session;
  constexpr std::int64_t kKeys = 12;
  std::optional<containers::THash<StmBackend>> map;
  {
    ScopedRecorder main_rec(session, 0);
    main_rec.rec().synthetic_begin();
    map.emplace(stm, 4);
    main_rec.rec().synthetic_commit();
  }

  run_team(o.threads, [&](std::size_t tid) {
    ScopedRecorder rec(session, static_cast<int>(tid) + 1);
    Rng rng(o.seed * 97 + tid);
    for (int i = 0; i < o.ops_per_thread; ++i) {
      const auto key = static_cast<std::int64_t>(rng.below(kKeys));
      switch (rng.below(3)) {
        case 0: map->put(key, static_cast<std::int64_t>(tid * 100 + i)); break;
        case 1: map->erase(key); break;
        default: {
          std::int64_t v;
          map->get(key, &v);
        }
      }
    }
  });

  RecordedRun run;
  {
    ScopedRecorder main_rec(session, 0);
    std::size_t present = 0;
    for (std::int64_t k = 0; k < kKeys; ++k) {
      std::int64_t v;
      if (map->get(k, &v)) ++present;
    }
    run.invariant_ok = present == map->size();
  }
  run.rec = assemble(session);
  run.workload = "thash";
  return run;
}

RecordedRun tqueue_workload(StmBackend& stm, const WorkloadOptions& o) {
  RecordSession session;
  containers::TQueue<StmBackend> q(stm, 4);  // ctor performs no stores

  std::atomic<std::int64_t> pushed{0}, popped{0};
  run_team(o.threads, [&](std::size_t tid) {
    ScopedRecorder rec(session, static_cast<int>(tid) + 1);
    Rng rng(o.seed * 13 + tid);
    for (int i = 0; i < o.ops_per_thread; ++i) {
      if ((tid + static_cast<std::size_t>(i)) % 2 == 0) {
        if (q.push(static_cast<std::int64_t>(rng.below(1000))))
          pushed.fetch_add(1);
      } else {
        if (q.pop()) popped.fetch_add(1);
      }
    }
  });

  RecordedRun run;
  {
    ScopedRecorder main_rec(session, 0);
    // Fixed number of drain transactions (not "until empty") so the
    // committed-txn count of the recording is schedule-independent.
    std::int64_t drained = 0;
    for (std::size_t i = 0; i <= q.capacity(); ++i)
      if (q.pop()) ++drained;
    run.invariant_ok = pushed.load() - popped.load() == drained;
  }
  run.rec = assemble(session);
  run.workload = "tqueue";
  return run;
}

// Single source of truth: workload_names() is derived from this table, so
// the name list and the dispatch cannot drift apart.
struct WorkloadEntry {
  const char* name;
  RecordedRun (*fn)(StmBackend&, const WorkloadOptions&);
};
constexpr WorkloadEntry kWorkloads[] = {
    {"bank", bank_workload},       {"bank_priv", bank_priv_workload},
    {"tlist", tlist_workload},     {"thash", thash_workload},
    {"tqueue", tqueue_workload},
};

}  // namespace

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const WorkloadEntry& e : kWorkloads) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

RecordedRun run_recorded_workload(const std::string& workload,
                                  stm::StmBackend& stm,
                                  const WorkloadOptions& opts) {
  for (const WorkloadEntry& e : kWorkloads) {
    if (workload == e.name) {
      RecordedRun run = e.fn(stm, opts);
      run.backend = stm.name();
      return run;
    }
  }
  throw std::invalid_argument("unknown recorded workload: " + workload);
}

}  // namespace mtx::record
