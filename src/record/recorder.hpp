// Runtime trace recording (the bridge from src/stm to src/model).
//
// A RecordSession captures one concurrent execution as per-thread event
// logs.  Each participating thread installs a ThreadRecorder (via
// ScopedRecorder) into the stm::TxObserver thread-local slot; the STM
// backends and Cell plain accesses then funnel every model-relevant event
// through it:
//
//   thread log:  append-only vector owned by one thread — lock-free.
//   global seq:  one atomic counter; every event draws a ticket, which
//                fixes the merged trace's index order.
//   shadow locs: the session lazily names each touched Cell with a small
//                location id and keeps a per-location (spinlock, write
//                version) shadow.  Accesses are performed *under* the
//                location's spinlock together with their seq ticket, so
//                per-location recorded order is exactly real memory order:
//                reads-from is reconstructed by version (no value-matching
//                heuristics), coherence order equals version order, and the
//                merged trace satisfies the per-location well-formedness
//                rules (WF3, WF6, WF8–WF11) by construction.
//
// The spinlocks serialize only same-location accesses and only while
// recording; this perturbs timing (recording is an oracle mode, not a
// performance mode) but not outcomes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "stm/api.hpp"

namespace mtx::record {

enum class Ev : std::uint8_t {
  Begin,
  Commit,
  Abort,
  Read,        // transactional read (actual memory load)
  Write,       // transactional write reaching memory
  PlainRead,   // Cell::plain_load
  PlainWrite,  // Cell::plain_store
  Fence,       // quiescence fence (all locations or a recorded cover set)
};

struct Event {
  std::uint64_t seq = 0;
  Ev kind = Ev::Begin;
  std::int32_t loc = -1;        // accesses only
  stm::word_t value = 0;        // accesses only
  std::uint64_t version = 0;    // write: version created; read: version seen
  // Fence events only: -1 = whole store (expand to a QFence per location);
  // >= 0 = index into the session's fence-cover table, and the fence claims
  // ordering for exactly those locations.  kFenceCoverSingle is produced
  // only by the assembler's sink_fences split (loc holds the one covered
  // location; loc < 0 marks an empty cover kept for fence accounting) —
  // recorders never emit it.
  std::int32_t cover = -1;
};

inline constexpr std::int32_t kFenceCoverSingle = -2;

class RecordSession;
class EventRing;

// Per-thread event log implementing the stm::TxObserver hooks.  Created and
// owned by the session (so logs survive thread exit until assembly); the
// installing thread is the only writer.
//
// Two capture modes share the hook implementations: post-hoc (default;
// events append to the owned vector, read at assembly) and streaming
// (stream_to(ring) set; events flow through a one-slot pending stage into a
// lock-free EventRing the window cutter drains concurrently).  The pending
// stage exists for retract_read: a backend that discovers a redo-log hit
// retracts the just-recorded read, which must therefore not yet be visible
// to the consumer.  flush() pushes the stage down; mark_epoch() flushes and
// publishes the round boundary the cutter seals segments at.
class ThreadRecorder final : public stm::TxObserver {
 public:
  ThreadRecorder(RecordSession& s, int thread_id)
      : session_(s), thread_(thread_id) {}

  void on_begin() override;
  void on_commit() override;
  void on_abort() override;
  void on_fence() override;
  void on_fence_scoped(const stm::QuiesceDomain& d) override;
  stm::word_t tx_read(const stm::Cell& c) override;
  void retract_read() override;
  void on_buffered_read() override { ++buffered_reads_; }
  void tx_publish(stm::Cell& c, stm::word_t v) override;
  std::uint64_t loc_version(const stm::Cell& c) override;
  void tx_unpublish(stm::Cell& c, stm::word_t v, std::uint64_t version) override;
  stm::word_t plain_load(const stm::Cell& c) override;
  void plain_store(stm::Cell& c, stm::word_t v) override;

  // Synthetic transaction brackets: lets a workload mark a plain setup or
  // teardown phase as one committed transaction, giving its plain writes
  // the happens-before edges (cwr/cww) real thread-creation order provides
  // but the paper's model cannot see.
  void synthetic_begin() { on_begin(); }
  void synthetic_commit() { on_commit(); }

  int thread_id() const { return thread_; }
  const std::vector<Event>& events() const { return log_; }
  std::uint64_t buffered_reads() const { return buffered_reads_; }

  // Streaming capture: route events into `ring` (nullptr restores post-hoc
  // capture).  Call from the recording thread only, outside a transaction.
  void stream_to(EventRing* ring);
  // Push the pending event down to the ring (no-op in post-hoc mode).
  void flush();
  // Flush, then publish the end-of-epoch mark the cutter seals segments at.
  void mark_epoch(std::uint64_t epoch);

 private:
  void push_marker(Ev kind);
  void emit(const Event& e);

  RecordSession& session_;
  int thread_;
  std::vector<Event> log_;
  std::uint64_t buffered_reads_ = 0;
  EventRing* ring_ = nullptr;
  Event pending_{};
  bool pending_valid_ = false;
};

// One recorded execution.  Create, attach recorders, run the workload, join
// all recording threads, then assemble (record/assemble.hpp).
class RecordSession {
 public:
  RecordSession() = default;
  RecordSession(const RecordSession&) = delete;
  RecordSession& operator=(const RecordSession&) = delete;

  // Creates a session-owned recorder for `thread_id` (model thread ids;
  // use small nonnegative ints).  A thread id may be attached more than
  // once (e.g. main-thread setup and teardown phases).
  ThreadRecorder* attach(int thread_id);

  // Number of distinct locations touched so far.
  int num_locs() const;

  // Location id assigned to `c` (first-touch order), or -1 when the cell was
  // never touched by a recorded access.  Lets a harness that owns the cells
  // (the fuzz interpreter) translate between its own location numbering and
  // the recorded trace's.
  int loc_id(const stm::Cell& c) const;

  // All recorders, in attach order.  Only safe to read once every
  // recording thread has finished (logs are single-writer).
  const std::vector<std::unique_ptr<ThreadRecorder>>& recorders() const {
    return recorders_;
  }

  // The location set a scoped fence covered (sorted, unique); index comes
  // from Event::cover.
  const std::vector<std::int32_t>& fence_cover(std::int32_t idx) const;

 private:
  friend class ThreadRecorder;

  struct LocShadow {
    std::atomic_flag lk = ATOMIC_FLAG_INIT;
    std::uint64_t version = 0;  // version visible now (0 = the init write)
    // Monotone allocator for new write versions.  Kept separate from
    // `version` so an undo store (which restores `version`) can never cause
    // a later write to reuse an aborted write's version — per-location
    // write timestamps must stay unique (WF3).
    std::uint64_t next = 0;
    std::int32_t loc = -1;
  };

  LocShadow& shadow_of(const stm::Cell& c);
  std::uint64_t next_seq() { return seq_.fetch_add(1, std::memory_order_acq_rel) + 1; }

  static void lock(LocShadow& s) {
    while (s.lk.test_and_set(std::memory_order_acquire)) {}
  }
  static void unlock(LocShadow& s) { s.lk.clear(std::memory_order_release); }

  std::atomic<std::uint64_t> seq_{0};

  mutable std::shared_mutex loc_mu_;
  std::unordered_map<const stm::Cell*, std::int32_t> loc_of_;
  std::deque<LocShadow> shadows_;  // stable references

  std::int32_t add_fence_cover(std::vector<std::int32_t> cover);

  std::mutex recorders_mu_;
  std::vector<std::unique_ptr<ThreadRecorder>> recorders_;

  mutable std::mutex covers_mu_;
  std::deque<std::vector<std::int32_t>> fence_covers_;  // stable references
};

// RAII installer: attaches a recorder for this thread and plants it in the
// stm::TxObserver slot for the scope.
class ScopedRecorder {
 public:
  ScopedRecorder(RecordSession& s, int thread_id)
      : rec_(s.attach(thread_id)), prev_(stm::tx_observer()) {
    stm::set_tx_observer(rec_);
  }
  ~ScopedRecorder() { stm::set_tx_observer(prev_); }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

  ThreadRecorder& rec() { return *rec_; }

 private:
  ThreadRecorder* rec_;
  stm::TxObserver* prev_;
};

}  // namespace mtx::record
