// Opacity (Guerraoui & Kapalka), the correctness condition §2 argues the
// model guarantees: there must be a serialization of *all* transactions --
// committed, aborted and live alike -- consistent with the execution's
// transactional dependencies and real-time order.
//
// We check the standard sufficient graph condition over the transactional
// subsystem: nodes are transactions (begins), edges are transactional
// reads-from (xwr), transactional antidependency (xrw -- note aborted
// *readers* participate: that is the "includes aborted transactions" part of
// the paper's claim), coherence between nonaborted transactions (cww), and
// real-time order (one transaction wholly before another in the trace).
// Acyclicity yields a witness serial order of all transactions.
//
// Mixed-mode caveat: plain accesses are not serialization nodes; in racy
// mixed programs opacity of the transactional subsystem is exactly what the
// paper's SC-LTRF theorem delivers (races on plain data are out of scope).
#pragma once

#include <optional>
#include <vector>

#include "model/analysis.hpp"
#include "model/derived.hpp"
#include "model/trace.hpp"

namespace mtx::model {

struct SerializationGraph {
  std::vector<std::size_t> txns;  // begin indices, including init's
  BitRel edges;                   // over trace indices, begin -> begin
  bool acyclic = false;
  // Begin indices in a witness serial order (when acyclic).
  std::vector<std::size_t> witness_order;
};

SerializationGraph serialization_graph(const Trace& t, const Relations& rel);
SerializationGraph serialization_graph(AnalysisContext& ctx);

// Conflict-opacity of the transactional subsystem.
bool opaque(const Trace& t);
bool opaque(AnalysisContext& ctx);

}  // namespace mtx::model
