// The shared analysis engine: one memoized context per (trace, config).
//
// Every checker in the model layer needs the same two expensive artifacts --
// the derived relations of §2 (Relations::compute, dense O(n^2)) and the
// happens-before closure (compute_hb, a semi-naive fixpoint).  Before this
// engine existed each checker recomputed both privately, so one conformance
// check over a recorded execution paid the relation build and the closure
// 5-7 times.  An AnalysisContext computes each artifact lazily, exactly
// once, and every checker (wellformedness, races, opacity, causal removal,
// sequentiality, suborders, the consistency axioms) has an overload that
// reads from the context instead of recomputing.
//
// The context borrows the trace; keep the trace alive for the context's
// lifetime and do not mutate it while analyses are cached.
#pragma once

#include <cstdint>
#include <optional>

#include "model/derived.hpp"
#include "model/happens_before.hpp"
#include "model/model_config.hpp"
#include "model/trace.hpp"
#include "model/wellformed.hpp"

namespace mtx::model {

class AnalysisContext {
 public:
  explicit AnalysisContext(const Trace& t,
                           ModelConfig cfg = ModelConfig::programmer())
      : t_(t), cfg_(std::move(cfg)) {}

  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  const Trace& trace() const { return t_; }
  const ModelConfig& config() const { return cfg_; }

  // Memoized artifacts: computed on first use, then shared by reference.
  const Relations& relations();
  const BitRel& hb();
  const WfReport& wf_report();
  bool wellformed() { return wf_report().ok(); }

 private:
  friend class ChainedAnalysis;

  const Trace& t_;
  ModelConfig cfg_;
  // Chained contexts dispatch to the word-parallel builders
  // (Relations::compute_fast / compute_hb_fast); standalone contexts keep
  // the reference path, so litmus-scale checking never depends on the fast
  // builders' equivalence and the two paths can be pinned against each
  // other end to end.
  bool fast_ = false;
  std::optional<Relations> rel_;
  std::optional<BitRel> hb_;
  std::optional<WfReport> wf_;
};

// Window-chain analysis engine for the streaming checker.
//
// A fence-bounded window chain analyzes the same *shape* of trace over and
// over: fresh init block, sparse carry transaction, opening fence group,
// then a recorded slice whose seed hb edges all point forward in index
// order.  A ChainedAnalysis carries the cross-window state from window N
// into window N+1 -- the model config and the running chain tallies -- and
// builds each window's context through the word-parallel relation builders
// and the forward (topological) hb closure that the chain's shape
// guarantees is applicable.  Verdicts are bit-identical to a fresh
// AnalysisContext on the same window (pinned by tests); advance() costs the
// fast build instead of the reference build.
//
// The returned context borrows chain-owned storage: it stays valid until
// the next advance() and must not outlive the chain or the window trace.
class ChainedAnalysis {
 public:
  explicit ChainedAnalysis(ModelConfig cfg = ModelConfig::implementation())
      : cfg_(std::move(cfg)) {}

  // Analyze the next window of the chain.
  AnalysisContext& advance(const Trace& w);

  const ModelConfig& config() const { return cfg_; }
  std::size_t windows() const { return windows_; }
  std::size_t events() const { return events_; }

 private:
  ModelConfig cfg_;
  std::optional<AnalysisContext> ctx_;
  std::size_t windows_ = 0;
  std::size_t events_ = 0;  // cumulative actions analyzed across the chain
};

// Computation counters, incremented by Relations::compute and compute_hb.
// They exist so tests can pin the "exactly once per context" guarantee --
// the whole point of the shared engine -- against regression; they are
// plain thread-local tallies and cost one increment per build.
struct AnalysisCounters {
  std::uint64_t relations_computes = 0;
  std::uint64_t hb_computes = 0;
};

AnalysisCounters analysis_counters();
void reset_analysis_counters();

namespace detail {
void count_relations_compute();
void count_hb_compute();
}  // namespace detail

}  // namespace mtx::model
