// Traces (§2): finite sequences of actions beginning with an initializing
// transaction that writes 0 to every location at timestamp 0.
//
// A Trace owns the action sequence in *index* order and maintains the
// transaction structure derived from it: which transaction each action
// belongs to, and each transaction's resolution state
// (committed / aborted / live).
//
// The structure is maintained *incrementally* under append and all
// structural queries (txn_of, txn_state, resolution_of, index_of_name) are
// O(1), so recorded executions with tens of thousands of events assemble in
// linear time and the relation builders never pay a per-query trace scan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/action.hpp"

namespace mtx::model {

enum class TxnState { Committed, Aborted, Live };

class Trace {
 public:
  Trace() = default;

  // A trace whose first actions are the initializing transaction
  // <B> <init W x0 0 @0> ... <init W x{n-1} 0 @0> <C>.
  static Trace with_init(int num_locs);

  // Appends an action; assigns a fresh name if a.name == -1.  Returns the
  // new action's index.
  int append(Action a);

  std::size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }
  const Action& operator[](std::size_t i) const { return actions_[i]; }
  const std::vector<Action>& actions() const { return actions_; }

  // Number of locations covered by the initializing transaction (0 if none).
  int num_locs() const { return num_locs_; }

  // Index of the action with the given name, or -1.  O(1).
  int index_of_name(int name) const {
    auto it = name_to_index_.find(name);
    return it == name_to_index_.end() ? -1 : it->second;
  }

  // ----- transaction structure -----

  // Index of the begin action of the transaction `i` belongs to, or -1 when
  // plain.  Begin/Commit/Abort actions belong to their own transaction.
  int txn_of(std::size_t i) const { return txn_of_[i]; }

  bool transactional(std::size_t i) const { return txn_of_[i] >= 0; }
  bool plain(std::size_t i) const { return txn_of_[i] < 0; }

  // tx~ : same transaction, or identical action (plain actions relate only
  // to themselves).
  bool same_txn(std::size_t i, std::size_t j) const {
    if (i == j) return true;
    return txn_of_[i] >= 0 && txn_of_[i] == txn_of_[j];
  }

  // State of the transaction whose begin is at index `begin_idx`.  O(1).
  TxnState txn_state(std::size_t begin_idx) const;

  // Action-level views of resolution state (plain actions are nonaborted).
  // All O(1).
  bool aborted(std::size_t i) const {
    return txn_of_[i] >= 0 &&
           state_of_[static_cast<std::size_t>(txn_of_[i])] == TxnState::Aborted;
  }
  bool live(std::size_t i) const {
    return txn_of_[i] >= 0 &&
           state_of_[static_cast<std::size_t>(txn_of_[i])] == TxnState::Live;
  }
  bool nonaborted(std::size_t i) const { return !aborted(i); }
  bool committed_txn_action(std::size_t i) const {
    return txn_of_[i] >= 0 &&
           state_of_[static_cast<std::size_t>(txn_of_[i])] == TxnState::Committed;
  }

  // All member indices of the transaction begun at begin_idx (includes the
  // begin and any resolution).
  std::vector<std::size_t> txn_members(std::size_t begin_idx) const;

  // All begin indices, in index order.
  std::vector<std::size_t> begins() const;

  // Does the transaction begun at begin_idx read or write x?
  bool txn_touches(std::size_t begin_idx, Loc x) const;

  // Does it read or write any location at all?  (What a summary fence <Q*>
  // asks: with every location covered, "touches a covered location" reduces
  // to "touches anything".)
  bool txn_accesses_any(std::size_t begin_idx) const;

  // Index of the resolution action of the txn begun at begin_idx, or -1.
  // O(1).
  int resolution_of(std::size_t begin_idx) const { return resolution_[begin_idx]; }

  // ----- whole-trace transformations -----

  // New trace whose i-th action is this trace's order[i]-th action.  Names
  // are preserved, so peer links survive.
  Trace permuted(const std::vector<std::size_t>& order) const;

  // Subsequence keeping exactly the flagged indices.
  Trace subsequence(const std::vector<bool>& keep) const;

  // Thm 4.2: the trace with all actions of aborted transactions removed.
  Trace without_aborted() const;

  // Lemma 5.1: the trace with all quiescence fences removed.
  Trace without_qfences() const;

  // Per-location final value over committed/plain writes (max timestamp).
  // Live and aborted writes never count (aborted roll back; live are not yet
  // visible).  Returns 0 when a location was never written (init writes 0).
  Value final_value(Loc x) const;

  // Largest write timestamp for x among nonaborted writes (0 if only init).
  Rational max_write_ts(Loc x) const;

  std::string str() const;  // one action per line, for diagnostics

 private:
  void recompute_structure();
  void index_appended(std::size_t i);

  std::vector<Action> actions_;
  std::vector<int> txn_of_;  // parallel to actions_
  int next_name_ = 0;
  int num_locs_ = 0;

  // Incrementally maintained structure caches (rebuilt wholesale by
  // recompute_structure after permutations/subsequences).
  std::vector<TxnState> state_of_;     // parallel; meaningful at begin indices
  std::vector<int> resolution_;       // parallel; begin index -> resolution index
  std::unordered_map<int, int> name_to_index_;
  std::unordered_map<Thread, int> open_;  // thread -> open begin index (or -1)
  // Resolutions whose peer name has not been appended yet (malformed traces
  // may name a begin that only appears later); resolved on arrival.
  std::unordered_map<int, std::vector<std::size_t>> pending_peer_;
};

// One-pass snapshot of every transaction's location footprint, answering
// "does the txn begun at b touch x?" in O(1).  The fence machinery (WF12,
// the HBCQ/HBQB happens-before seed) asks that once per fence x txn pair;
// going through txn_touches costs a whole-trace scan per query, which turns
// scoped-fence-heavy recorded traces — one <Qx> per covered location per
// privatize-scan — cubic in the trace length.
class TxnLocCover {
 public:
  explicit TxnLocCover(const Trace& t);

  // Does the transaction begun at begin_idx read or write x?  Pass kAllLocs
  // for the summary-fence question ("touches anything at all").
  bool touches(std::size_t begin_idx, Loc x) const {
    if (x == kAllLocs) return any_[begin_idx];
    const std::size_t lx = static_cast<std::size_t>(x);
    if (lx >= 64 * words_) return false;
    return (bits_[begin_idx * words_ + lx / 64] >> (lx % 64)) & 1u;
  }
  bool accesses_any(std::size_t begin_idx) const { return any_[begin_idx]; }

 private:
  std::size_t words_;               // loc-bitset words per row
  std::vector<std::uint64_t> bits_;  // row per action index; begin rows used
  std::vector<bool> any_;
};

}  // namespace mtx::model
