#include "model/wellformed.hpp"

#include <map>
#include <set>

#include "model/analysis.hpp"

namespace mtx::model {

bool WfReport::violates(int rule) const {
  for (const auto& v : violations)
    if (v.rule == rule) return true;
  return false;
}

std::string WfReport::str() const {
  std::string s;
  for (const auto& v : violations)
    s += "WF" + std::to_string(v.rule) + ": " + v.msg + "\n";
  return s;
}

namespace {

void check_wf1(const Trace& t, WfReport& out) {
  // The trace starts with an initializing transaction: <B> by init, exactly
  // one write per location at timestamp 0, then <C>.
  const int nlocs = t.num_locs();
  const std::size_t expect = static_cast<std::size_t>(nlocs) + 2;
  if (t.size() < expect) {
    out.violations.push_back({1, "trace shorter than initializing transaction"});
    return;
  }
  if (!t[0].is_begin() || t[0].thread != kInitThread) {
    out.violations.push_back({1, "trace does not start with init begin"});
    return;
  }
  std::set<Loc> seen;
  for (std::size_t i = 1; i + 1 < expect; ++i) {
    const Action& a = t[i];
    if (!a.is_write() || a.thread != kInitThread || a.ts != Rational(0) ||
        a.value != 0) {
      out.violations.push_back({1, "malformed init write at index " + std::to_string(i)});
      return;
    }
    if (!seen.insert(a.loc).second) {
      out.violations.push_back({1, "duplicate init write for location"});
      return;
    }
  }
  const Action& c = t[expect - 1];
  if (!c.is_commit() || c.thread != kInitThread || c.peer != t[0].name) {
    out.violations.push_back({1, "initializing transaction does not commit"});
    return;
  }
  if (static_cast<int>(seen.size()) != nlocs)
    out.violations.push_back({1, "init transaction does not cover all locations"});
  for (std::size_t i = expect; i < t.size(); ++i)
    if (t[i].thread == kInitThread)
      out.violations.push_back({1, "init thread acts after initialization"});
}

void check_wf2(const Trace& t, WfReport& out) {
  std::set<int> names;
  for (std::size_t i = 0; i < t.size(); ++i)
    if (!names.insert(t[i].name).second)
      out.violations.push_back({2, "duplicate action name " + std::to_string(t[i].name)});
}

void check_wf3(const Trace& t, WfReport& out) {
  // Write timestamps are per-location unique.
  std::map<Loc, std::set<std::pair<std::int64_t, std::int64_t>>> stamps;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    if (!a.is_write()) continue;
    if (!stamps[a.loc].insert({a.ts.num(), a.ts.den()}).second)
      out.violations.push_back(
          {3, "duplicate timestamp " + a.ts.str() + " on location " + std::to_string(a.loc)});
  }
}

void check_wf4_wf5(const Trace& t, WfReport& out) {
  // WF4: each begin has at most one resolution; each resolution exactly one
  // begin.  WF5: each resolution follows its begin in po with no intervening
  // begin or resolution.
  std::map<int, int> resolutions;  // begin name -> count
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    if (!a.is_resolution()) continue;
    ++resolutions[a.peer];
    const int b = t.index_of_name(a.peer);
    if (b < 0 || !t[static_cast<std::size_t>(b)].is_begin()) {
      out.violations.push_back({4, "resolution without matching begin"});
      continue;
    }
    const Action& ba = t[static_cast<std::size_t>(b)];
    if (ba.thread != a.thread || static_cast<std::size_t>(b) >= i) {
      out.violations.push_back({5, "resolution does not follow its begin in po"});
      continue;
    }
    for (std::size_t j = static_cast<std::size_t>(b) + 1; j < i; ++j) {
      if (t[j].thread != a.thread) continue;
      if (t[j].is_begin() || t[j].is_resolution()) {
        out.violations.push_back({5, "intervening boundary between begin and resolution"});
        break;
      }
    }
  }
  for (const auto& [name, count] : resolutions)
    if (count > 1)
      out.violations.push_back({4, "begin " + std::to_string(name) + " resolved twice"});
}

void check_wf6(const Trace& t, const Relations& rel, WfReport& out) {
  for (std::size_t b = 0; b < t.size(); ++b) {
    if (!t[b].is_read()) continue;
    bool fulfilled = false;
    for (std::size_t a = 0; a < t.size() && !fulfilled; ++a)
      if (rel.wr.test(a, b)) fulfilled = true;
    if (!fulfilled)
      out.violations.push_back({6, "unfulfilled read " + t[b].str()});
  }
}

void check_wf7(const Trace& t, const Relations& rel, WfReport& out) {
  rel.wr.for_each([&](std::size_t a, std::size_t b) {
    if ((t.aborted(a) || t.live(a)) && !t.same_txn(a, b))
      out.violations.push_back(
          {7, "read " + t[b].str() + " sees unresolved/aborted write " + t[a].str()});
  });
}

void check_wf8(const Trace& t, const Relations& rel, WfReport& out) {
  rel.wr.for_each([&](std::size_t a, std::size_t b) {
    if (a > b)
      out.violations.push_back({8, "read " + t[b].str() + " sees the future"});
  });
}

void check_wf9(const Trace& t, const Relations& rel, WfReport& out) {
  // If b is transactional (write), no committed-or-live c before b in index
  // with b ww c.  "Committed or live" are transaction states, so c ranges
  // over transactional actions only (the paper says "plain or nonaborted"
  // explicitly, e.g. in the rw definition, when it wants plain included).
  // Aborted b is exempt too: aborted writes are invisible, and constraining
  // them would contradict Lemma A.5 (a consistent trace whose aborted txn
  // reads from one txn and ww-precedes another could not be made
  // contiguous).
  for (std::size_t b = 0; b < t.size(); ++b) {
    if (!t[b].is_write() || !t.transactional(b) || t.aborted(b)) continue;
    for (std::size_t c = 0; c < b; ++c) {
      if (!t.transactional(c) || t.aborted(c)) continue;
      if (rel.ww.test(b, c))
        out.violations.push_back(
            {9, "transactional write " + t[b].str() + " behind earlier " + t[c].str()});
    }
  }
}

void check_wf10(const Trace& t, const Relations& rel, WfReport& out) {
  // If b is a transactional read from a transactional write a, no
  // committed-or-live c before b in index with a ww c (c transactional, as
  // in WF9).
  for (std::size_t b = 0; b < t.size(); ++b) {
    if (!t[b].is_read() || !t.transactional(b)) continue;
    for (std::size_t a = 0; a < t.size(); ++a) {
      if (!rel.wr.test(a, b) || !t.transactional(a)) continue;
      for (std::size_t c = 0; c < b; ++c) {
        if (!t.transactional(c) || t.aborted(c)) continue;
        if (rel.ww.test(a, c))
          out.violations.push_back(
              {10, "transactional read " + t[b].str() + " stale: " + t[c].str() +
                       " already overwrote its source"});
      }
    }
  }
}

void check_wf11(const Trace& t, const Relations& rel, WfReport& out) {
  // If b is a transactional read from a, no same-transaction write c before
  // b in index with a ww c.
  for (std::size_t b = 0; b < t.size(); ++b) {
    if (!t[b].is_read() || !t.transactional(b)) continue;
    for (std::size_t a = 0; a < t.size(); ++a) {
      if (!rel.wr.test(a, b)) continue;
      for (std::size_t c = 0; c < b; ++c) {
        if (c == b || !t.same_txn(c, b) || c == a) continue;
        if (rel.ww.test(a, c))
          out.violations.push_back(
              {11, "read " + t[b].str() + " ignores own transaction's write " + t[c].str()});
      }
    }
  }
}

void check_wf12(const Trace& t, WfReport& out) {
  // A quiescence fence <Qx> may not be interleaved with a transaction that
  // touches x: if <b:B> index-> <Qx> then <Cb> index-> <Qx>, <Ab> index-> <Qx>,
  // or b neither reads nor writes x.  A summary fence <Q*> covers every
  // location, so any access at all counts as touching.
  // Recorded scoped fences expand to one <Qx> per covered location, so this
  // check runs per fence x transaction pair; the one-pass TxnLocCover keeps
  // each touch query O(1) instead of a whole-trace scan.
  std::vector<std::size_t> fences;
  for (std::size_t q = 0; q < t.size(); ++q)
    if (t[q].is_qfence()) fences.push_back(q);
  if (fences.empty()) return;
  const TxnLocCover cover(t);
  for (std::size_t q : fences) {
    for (std::size_t b = 0; b < q; ++b) {
      if (!t[b].is_begin()) continue;
      if (!cover.touches(b, t[q].loc)) continue;
      const int r = t.resolution_of(b);
      if (r < 0 || static_cast<std::size_t>(r) > q)
        out.violations.push_back(
            {12, "fence " + t[q].str() + " interleaved with open transaction touching its location"});
    }
  }
}

}  // namespace

WfReport check_wellformed(const Trace& t) {
  return check_wellformed(t, Relations::compute(t));
}

WfReport check_wellformed(const Trace& t, const Relations& rel) {
  WfReport out;
  check_wf1(t, out);
  check_wf2(t, out);
  check_wf3(t, out);
  check_wf4_wf5(t, out);
  check_wf6(t, rel, out);
  check_wf7(t, rel, out);
  check_wf8(t, rel, out);
  check_wf9(t, rel, out);
  check_wf10(t, rel, out);
  check_wf11(t, rel, out);
  check_wf12(t, out);
  return out;
}

WfReport check_wellformed(AnalysisContext& ctx) { return ctx.wf_report(); }

bool wellformed(const Trace& t) { return check_wellformed(t).ok(); }

}  // namespace mtx::model
