// Model configurations: which happens-before side conditions (§2 HBww and
// the five Example 2.3 variants) and which antidependency axioms are in
// force, and whether the §5 implementation model's quiescence fences
// (WF12, HBCQ, HBQB) are enabled.
//
// Named presets:
//   programmer()      §2 model: HBww + AntiWW                     (the paper's model)
//   implementation()  §5 model: no HB side conditions, no AntiWW, fences on
//   base()            HBdefn/HBtrans only (LDRF-style core, no fences)
//   strongest()       all six side conditions + all four anti axioms; this is
//                     the x86-TSO-validated variant of §6
//   variant_*()       the six single-rule models of Example 2.3
#pragma once

#include <string>
#include <vector>

namespace mtx::model {

struct ModelConfig {
  std::string name = "base";

  // HB side conditions (Example 2.3).  Unprimed rules order a transactional
  // action before a later plain action; primed rules order a plain action
  // before a later transactional one.
  bool hb_ww = false;    // a hb c if c plain, a lww c, a crw b hb c
  bool hb_rw = false;    // a hb c if c plain, a lrw c, a crw b hb c
  bool hb_wr = false;    // a hb c if c plain, a lwr c, a crw b hb c
  bool hb_ww_p = false;  // a hb c if a plain, a lww c, a hb b crw c
  bool hb_rw_p = false;  // a hb c if a plain, a lrw c, a hb b crw c
  bool hb_wr_p = false;  // a hb c if a plain, a lwr c, a hb b crw c

  // Antidependency axioms.
  bool anti_ww = false;    // (crw ; hb ; lww) irreflexive
  bool anti_rw = false;    // (crw ; hb ; lrw) irreflexive
  bool anti_ww_p = false;  // (hb ; crw ; lww) irreflexive
  bool anti_rw_p = false;  // (hb ; crw ; lrw) irreflexive

  // Implementation model: drop HB side conditions, add quiescence fences
  // with HBCQ/HBQB ordering (and WF12 well-formedness).
  bool qfences = false;

  bool any_hb_rule() const {
    return hb_ww || hb_rw || hb_wr || hb_ww_p || hb_rw_p || hb_wr_p;
  }

  static ModelConfig base();
  static ModelConfig programmer();
  static ModelConfig implementation();
  static ModelConfig strongest();

  static ModelConfig variant_hb_ww();    // == programmer modulo name
  static ModelConfig variant_hb_rw();    // HBrw + AntiRW
  static ModelConfig variant_hb_wr();    // HBwr (Causality suffices, no anti)
  static ModelConfig variant_hb_ww_p();  // HB'ww + Anti'WW
  static ModelConfig variant_hb_rw_p();  // HB'rw + Anti'RW
  static ModelConfig variant_hb_wr_p();  // HB'wr

  // The six Example 2.3 variants, in the order the paper lists them.
  static std::vector<ModelConfig> example_2_3_variants();
};

}  // namespace mtx::model
