#include "model/race.hpp"

namespace mtx::model {

LocSet all_locs(const Trace& t) {
  return LocSet(static_cast<std::size_t>(t.num_locs()), true);
}

LocSet loc_set(std::initializer_list<Loc> locs, int num_locs) {
  LocSet s(static_cast<std::size_t>(num_locs), false);
  for (Loc x : locs) s[static_cast<std::size_t>(x)] = true;
  return s;
}

bool touches_locset(const Action& a, const LocSet& locs) {
  return a.is_memory_access() && a.loc >= 0 &&
         static_cast<std::size_t>(a.loc) < locs.size() &&
         locs[static_cast<std::size_t>(a.loc)];
}

bool l_conflict(const Trace& t, std::size_t i, std::size_t j, const LocSet& locs) {
  const Action& a = t[i];
  const Action& b = t[j];
  if (!a.is_memory_access() || !b.is_memory_access()) return false;
  if (a.loc != b.loc) return false;
  if (!touches_locset(a, locs)) return false;
  if (!a.is_write() && !b.is_write()) return false;
  if (!t.plain(i) && !t.plain(j)) return false;  // at least one plain
  if (t.aborted(i) || t.aborted(j)) return false;
  return true;
}

bool is_l_race(const Trace& t, const BitRel& hb, std::size_t b, std::size_t c,
               const LocSet& locs) {
  if (b >= c) return false;  // need b index-> c
  if (!l_conflict(t, b, c, locs)) return false;
  return !hb.test(b, c);
}

std::vector<Race> find_l_races(const Trace& t, const BitRel& hb, const LocSet& locs) {
  std::vector<Race> out;
  for (std::size_t b = 0; b < t.size(); ++b)
    for (std::size_t c = b + 1; c < t.size(); ++c)
      if (is_l_race(t, hb, b, c, locs)) out.push_back({b, c});
  return out;
}

bool has_l_race(const Trace& t, const BitRel& hb, const LocSet& locs) {
  for (std::size_t b = 0; b < t.size(); ++b)
    for (std::size_t c = b + 1; c < t.size(); ++c)
      if (is_l_race(t, hb, b, c, locs)) return true;
  return false;
}

std::vector<Race> find_l_races(AnalysisContext& ctx, const LocSet& locs) {
  return find_l_races(ctx.trace(), ctx.hb(), locs);
}

bool has_l_race(AnalysisContext& ctx, const LocSet& locs) {
  return has_l_race(ctx.trace(), ctx.hb(), locs);
}

bool has_mixed_race(AnalysisContext& ctx) {
  return has_mixed_race(ctx.trace(), ctx.hb());
}

bool has_mixed_race(const Trace& t, const BitRel& hb) {
  const LocSet everything = all_locs(t);
  for (std::size_t b = 0; b < t.size(); ++b) {
    if (!t[b].is_write()) continue;
    for (std::size_t c = b + 1; c < t.size(); ++c) {
      if (!t[c].is_write()) continue;
      // one transactional write, one plain write
      const bool mixed = (t.transactional(b) && t.plain(c)) ||
                         (t.plain(b) && t.transactional(c));
      if (!mixed) continue;
      if (is_l_race(t, hb, b, c, everything)) return true;
    }
  }
  return false;
}

}  // namespace mtx::model
