#include "model/dot.hpp"

namespace mtx::model {

namespace {

std::string node_name(std::size_t i) { return "n" + std::to_string(i); }

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const Trace& t, const Analysis& an, DotOptions opts) {
  std::string dot = "digraph execution {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

  auto skip = [&](std::size_t i) {
    return !opts.include_init && t[i].thread == kInitThread;
  };

  // Transaction clusters.
  for (std::size_t b : t.begins()) {
    if (skip(b)) continue;
    const bool aborted = t.txn_state(b) == TxnState::Aborted;
    dot += "  subgraph cluster_txn" + std::to_string(b) + " {\n";
    dot += aborted ? "    style=dashed; color=red;\n"
                   : "    style=solid; color=blue;\n";
    for (std::size_t m : t.txn_members(b))
      dot += "    " + node_name(m) + ";\n";
    dot += "  }\n";
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (skip(i)) continue;
    dot += "  " + node_name(i) + " [label=\"" + escape(t[i].str()) + "\"];\n";
  }

  auto emit = [&](const BitRel& r, const char* label, const char* color) {
    r.for_each([&](std::size_t a, std::size_t b) {
      if (skip(a) || skip(b)) return;
      dot += "  " + node_name(a) + " -> " + node_name(b) + " [label=\"" + label +
             "\", color=" + color + "];\n";
    });
  };

  if (opts.show_po) {
    // Immediate po only (transitive reduction within threads).
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (skip(i)) continue;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].thread != t[i].thread) continue;
        if (!skip(j))
          dot += "  " + node_name(i) + " -> " + node_name(j) + " [style=dotted];\n";
        break;
      }
    }
  }
  if (opts.show_wr) emit(an.rel.wr, "wr", "darkgreen");
  if (opts.show_ww) emit(an.rel.ww, "ww", "black");
  if (opts.show_rw) emit(an.rel.rw, "rw", "orange");
  if (opts.show_hb) emit(an.hb, "hb", "gray");

  dot += "}\n";
  return dot;
}

}  // namespace mtx::model
