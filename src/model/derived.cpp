#include "model/derived.hpp"

#include "model/analysis.hpp"

namespace mtx::model {

BitRel lift(const Trace& t, const BitRel& r) {
  const std::size_t n = t.size();
  // E = tx~ (with identity).  l R = R  |  (E;R;E restricted to a !tx~ b).
  BitRel eq(n);
  for (std::size_t i = 0; i < n; ++i) {
    eq.set(i, i);
    for (std::size_t j = 0; j < n; ++j)
      if (t.same_txn(i, j)) eq.set(i, j);
  }
  BitRel lifted = eq.compose(r).compose(eq).filtered(
      [&](std::size_t a, std::size_t b) { return !t.same_txn(a, b); });
  lifted |= r;
  return lifted;
}

Relations Relations::compute(const Trace& t) {
  detail::count_relations_compute();
  const std::size_t n = t.size();
  Relations rel;
  rel.index = BitRel(n);
  rel.init = BitRel(n);
  rel.po = BitRel(n);
  rel.ww = BitRel(n);
  rel.wr = BitRel(n);
  rel.rw = BitRel(n);
  rel.tx = BitRel(n);

  for (std::size_t i = 0; i < n; ++i) {
    const Action& a = t[i];
    rel.tx.set(i, i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Action& b = t[j];
      if (i < j) rel.index.set(i, j);
      if (a.thread == kInitThread && b.thread != kInitThread) rel.init.set(i, j);
      if (i < j && a.thread == b.thread) rel.po.set(i, j);
      if (t.same_txn(i, j)) rel.tx.set(i, j);
      if (a.is_write() && b.is_write() && a.loc == b.loc && a.ts < b.ts)
        rel.ww.set(i, j);
      if (a.is_write() && b.is_read() && a.loc == b.loc && a.value == b.value &&
          a.ts == b.ts)
        rel.wr.set(i, j);
    }
  }

  // rw: b rw c iff exists a with a wr b, a ww c, and c plain or nonaborted.
  // (wr^T ; ww), filtered on the target's resolution state.
  rel.rw = rel.wr.transposed().compose(rel.ww).filtered(
      [&](std::size_t, std::size_t c) { return t.plain(c) || t.nonaborted(c); });

  auto transactional_pair = [&](std::size_t a, std::size_t b) {
    return t.transactional(a) && t.transactional(b);
  };
  auto nonaborted_pair = [&](std::size_t a, std::size_t b) {
    return t.nonaborted(a) && t.nonaborted(b);
  };

  rel.lww = lift(t, rel.ww);
  rel.lwr = lift(t, rel.wr);
  rel.lrw = lift(t, rel.rw);
  rel.xww = rel.lww.filtered(transactional_pair);
  rel.xwr = rel.lwr.filtered(transactional_pair);
  rel.xrw = rel.lrw.filtered(transactional_pair);
  rel.cww = rel.xww.filtered(nonaborted_pair);
  rel.cwr = rel.xwr.filtered(nonaborted_pair);
  rel.crw = rel.xrw.filtered(nonaborted_pair);
  return rel;
}

}  // namespace mtx::model
