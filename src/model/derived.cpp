#include "model/derived.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "model/analysis.hpp"

namespace mtx::model {

BitRel lift(const Trace& t, const BitRel& r) {
  const std::size_t n = t.size();
  // E = tx~ (with identity).  l R = R  |  (E;R;E restricted to a !tx~ b).
  BitRel eq(n);
  for (std::size_t i = 0; i < n; ++i) {
    eq.set(i, i);
    for (std::size_t j = 0; j < n; ++j)
      if (t.same_txn(i, j)) eq.set(i, j);
  }
  BitRel lifted = eq.compose(r).compose(eq).filtered(
      [&](std::size_t a, std::size_t b) { return !t.same_txn(a, b); });
  lifted |= r;
  return lifted;
}

Relations Relations::compute(const Trace& t) {
  detail::count_relations_compute();
  const std::size_t n = t.size();
  Relations rel;
  rel.index = BitRel(n);
  rel.init = BitRel(n);
  rel.po = BitRel(n);
  rel.ww = BitRel(n);
  rel.wr = BitRel(n);
  rel.rw = BitRel(n);
  rel.tx = BitRel(n);

  for (std::size_t i = 0; i < n; ++i) {
    const Action& a = t[i];
    rel.tx.set(i, i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Action& b = t[j];
      if (i < j) rel.index.set(i, j);
      if (a.thread == kInitThread && b.thread != kInitThread) rel.init.set(i, j);
      if (i < j && a.thread == b.thread) rel.po.set(i, j);
      if (t.same_txn(i, j)) rel.tx.set(i, j);
      if (a.is_write() && b.is_write() && a.loc == b.loc && a.ts < b.ts)
        rel.ww.set(i, j);
      if (a.is_write() && b.is_read() && a.loc == b.loc && a.value == b.value &&
          a.ts == b.ts)
        rel.wr.set(i, j);
    }
  }

  // rw: b rw c iff exists a with a wr b, a ww c, and c plain or nonaborted.
  // (wr^T ; ww), filtered on the target's resolution state.
  rel.rw = rel.wr.transposed().compose(rel.ww).filtered(
      [&](std::size_t, std::size_t c) { return t.plain(c) || t.nonaborted(c); });

  auto transactional_pair = [&](std::size_t a, std::size_t b) {
    return t.transactional(a) && t.transactional(b);
  };
  auto nonaborted_pair = [&](std::size_t a, std::size_t b) {
    return t.nonaborted(a) && t.nonaborted(b);
  };

  rel.lww = lift(t, rel.ww);
  rel.lwr = lift(t, rel.wr);
  rel.lrw = lift(t, rel.rw);
  rel.xww = rel.lww.filtered(transactional_pair);
  rel.xwr = rel.lwr.filtered(transactional_pair);
  rel.xrw = rel.lrw.filtered(transactional_pair);
  rel.cww = rel.xww.filtered(nonaborted_pair);
  rel.cwr = rel.xwr.filtered(nonaborted_pair);
  rel.crw = rel.xrw.filtered(nonaborted_pair);
  return rel;
}

// ----- word-parallel builder ------------------------------------------------

namespace {

// A free-standing row of n column bits, used for the per-category masks the
// fast builder combines into relation rows.
using Mask = std::vector<std::uint64_t>;

inline void mask_set(Mask& m, std::size_t b) {
  m[b / 64] |= std::uint64_t{1} << (b % 64);
}

inline void row_or_mask(BitRel& r, std::size_t a, const Mask& m) {
  std::uint64_t* row = r.row(a);
  for (std::size_t w = 0; w < m.size(); ++w) row[w] |= m[w];
}

inline void row_and_mask(BitRel& r, std::size_t a, const Mask& m) {
  std::uint64_t* row = r.row(a);
  for (std::size_t w = 0; w < m.size(); ++w) row[w] &= m[w];
}

inline void row_clear(BitRel& r, std::size_t a) {
  std::uint64_t* row = r.row(a);
  for (std::size_t w = 0; w < r.row_words(); ++w) row[w] = 0;
}

template <typename Fn>
inline void mask_for_each(const Mask& m, Fn fn) {
  for (std::size_t w = 0; w < m.size(); ++w) {
    std::uint64_t word = m[w];
    while (word) {
      fn(w * 64 + static_cast<std::size_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

// Per-transaction member masks, indexed through txslot (begin index ->
// compact slot).  Plain actions have no slot.
struct TxnMasks {
  std::vector<int> txslot;     // size n; -1 for plain
  std::vector<Mask> members;   // per slot
};

TxnMasks txn_masks(const Trace& t, std::size_t words) {
  const std::size_t n = t.size();
  TxnMasks tm;
  tm.txslot.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const int b = t.txn_of(i);
    if (b < 0) continue;
    int& slot = tm.txslot[static_cast<std::size_t>(b)];
    if (slot < 0) {
      slot = static_cast<int>(tm.members.size());
      tm.members.emplace_back(words, 0);
    }
    tm.txslot[i] = slot;
    mask_set(tm.members[static_cast<std::size_t>(slot)], i);
  }
  return tm;
}

// Block-structured lift: all members of a transaction share one (E;R;E) row
// -- the union of the members' R rows, expanded by the transactions of its
// targets -- so the lift costs one union + one expansion per *transaction*
// instead of two n^3/64 compositions.  Same-txn pairs (identity for plain
// actions) are masked out, matching lift()'s filtered(!same_txn), then R
// itself is OR-ed back in.
BitRel lift_fast(const Trace& t, const BitRel& r, const TxnMasks& tm) {
  const std::size_t n = t.size();
  const std::size_t words = r.row_words();
  BitRel out = r;
  Mask uni(words, 0), expanded(words, 0);
  std::vector<std::size_t> stamp(tm.members.size(), 0);
  std::size_t cur = 0;

  auto expand = [&]() {
    // expanded = uni plus, for every target inside a transaction, that
    // transaction's full member set.
    expanded = uni;
    ++cur;
    mask_for_each(uni, [&](std::size_t c) {
      const int slot = tm.txslot[c];
      if (slot < 0) return;
      if (stamp[static_cast<std::size_t>(slot)] == cur) return;
      stamp[static_cast<std::size_t>(slot)] = cur;
      const Mask& m = tm.members[static_cast<std::size_t>(slot)];
      for (std::size_t w = 0; w < words; ++w) expanded[w] |= m[w];
    });
  };

  // Transaction groups.
  for (std::size_t slot = 0; slot < tm.members.size(); ++slot) {
    const Mask& m = tm.members[slot];
    std::fill(uni.begin(), uni.end(), 0);
    bool any = false;
    mask_for_each(m, [&](std::size_t i) {
      const std::uint64_t* row = r.row(i);
      for (std::size_t w = 0; w < words; ++w) {
        uni[w] |= row[w];
        any = any || row[w];
      }
    });
    if (!any) continue;
    expand();
    mask_for_each(m, [&](std::size_t i) {
      std::uint64_t* row = out.row(i);
      for (std::size_t w = 0; w < words; ++w) row[w] |= expanded[w] & ~m[w];
    });
  }
  // Plain actions: E relates them only to themselves, so the block is the
  // singleton {a} and the exclusion just drops the identity pair.
  for (std::size_t a = 0; a < n; ++a) {
    if (t.txn_of(a) >= 0) continue;
    const std::uint64_t* row = r.row(a);
    bool any = false;
    for (std::size_t w = 0; w < words; ++w) {
      uni[w] = row[w];
      any = any || row[w];
    }
    if (!any) continue;
    expand();
    std::uint64_t* orow = out.row(a);
    for (std::size_t w = 0; w < words; ++w) orow[w] |= expanded[w];
    out.set(a, a, r.test(a, a));  // keep only R's own diagonal, if any
  }
  return out;
}

}  // namespace

Relations Relations::compute_fast(const Trace& t) {
  detail::count_relations_compute();
  const std::size_t n = t.size();
  Relations rel;
  rel.index = BitRel(n);
  rel.init = BitRel(n);
  rel.po = BitRel(n);
  rel.ww = BitRel(n);
  rel.wr = BitRel(n);
  rel.rw = BitRel(n);
  rel.tx = BitRel(n);
  if (n == 0) {
    rel.lww = rel.lwr = rel.lrw = BitRel(n);
    rel.xww = rel.xwr = rel.xrw = BitRel(n);
    rel.cww = rel.cwr = rel.crw = BitRel(n);
    return rel;
  }
  const std::size_t words = rel.index.row_words();

  // Column masks by action category.
  Mask noninit(words, 0), transactional(words, 0), nonaborted(words, 0);
  std::vector<std::size_t> inits;
  std::unordered_map<Thread, std::vector<std::size_t>> by_thread;
  for (std::size_t i = 0; i < n; ++i) {
    const Action& a = t[i];
    if (a.thread == kInitThread) {
      inits.push_back(i);
    } else {
      mask_set(noninit, i);
    }
    if (t.transactional(i)) mask_set(transactional, i);
    if (t.nonaborted(i)) mask_set(nonaborted, i);
    by_thread[a.thread].push_back(i);
  }

  // index: everything later; init: every non-init action, either direction.
  for (std::size_t i = 0; i + 1 < n; ++i) rel.index.set_range(i, i + 1, n);
  for (std::size_t i : inits) row_or_mask(rel.init, i, noninit);

  // po: later actions of the same thread — suffix masks per thread.
  Mask suffix(words, 0);
  for (auto& [thr, idxs] : by_thread) {
    (void)thr;
    std::fill(suffix.begin(), suffix.end(), 0);
    for (auto it = idxs.rbegin(); it != idxs.rend(); ++it) {
      row_or_mask(rel.po, *it, suffix);
      mask_set(suffix, *it);
    }
  }

  // tx~: each member's row is its transaction's member mask (which contains
  // the member itself); plain actions relate only to themselves.
  const TxnMasks tm = txn_masks(t, words);
  for (std::size_t i = 0; i < n; ++i) {
    const int slot = tm.txslot[i];
    if (slot >= 0) {
      row_or_mask(rel.tx, i, tm.members[static_cast<std::size_t>(slot)]);
    } else {
      rel.tx.set(i, i);
    }
  }

  // ww: per location, writes ordered by strictly increasing timestamp —
  // walk the sorted list backwards keeping a "strictly later ts" mask
  // (equal timestamps, which WF3 forbids but malformed traces may contain,
  // are unrelated in either direction, exactly as in the reference).
  // wr: fulfilling write(s) looked up by (timestamp, value) per location.
  std::map<Loc, std::vector<std::pair<Rational, std::size_t>>> writes_by_loc;
  for (std::size_t i = 0; i < n; ++i)
    if (t[i].is_write()) writes_by_loc[t[i].loc].emplace_back(t[i].ts, i);
  std::map<std::pair<Loc, std::pair<Rational, Value>>, std::vector<std::size_t>>
      write_lookup;
  Mask later(words, 0), pending(words, 0);
  for (auto& [loc, ws] : writes_by_loc) {
    std::stable_sort(ws.begin(), ws.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::fill(later.begin(), later.end(), 0);
    std::fill(pending.begin(), pending.end(), 0);
    for (std::size_t k = ws.size(); k-- > 0;) {
      if (k + 1 < ws.size() && !(ws[k].first == ws[k + 1].first)) {
        for (std::size_t w = 0; w < words; ++w) {
          later[w] |= pending[w];
          pending[w] = 0;
        }
      }
      row_or_mask(rel.ww, ws[k].second, later);
      mask_set(pending, ws[k].second);
    }
    for (const auto& [ts, i] : ws)
      write_lookup[{loc, {ts, t[i].value}}].push_back(i);
  }
  // Fulfilling writes per read, kept for the rw build below.
  std::vector<std::vector<std::size_t>> fulfills(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Action& b = t[j];
    if (!b.is_read()) continue;
    auto it = write_lookup.find({b.loc, {b.ts, b.value}});
    if (it == write_lookup.end()) continue;
    fulfills[j] = it->second;
    for (std::size_t i : it->second) rel.wr.set(i, j);
  }

  // rw: b rw c iff some fulfilling write a of b has a ww c — the read's row
  // is the union of its writers' ww rows, then targets restricted to plain
  // or nonaborted (plain actions are nonaborted, so one mask suffices).
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i : fulfills[j]) rel.rw.or_row(j, rel.ww, i);
    if (!fulfills[j].empty()) row_and_mask(rel.rw, j, nonaborted);
  }

  rel.lww = lift_fast(t, rel.ww, tm);
  rel.lwr = lift_fast(t, rel.wr, tm);
  rel.lrw = lift_fast(t, rel.rw, tm);

  // x: both endpoints transactional — clear plain rows, mask plain columns.
  // c: additionally both nonaborted.
  auto restrict_rows = [&](const BitRel& src, const Mask& colmask,
                           auto keep_row) {
    BitRel out = src;
    for (std::size_t a = 0; a < n; ++a) {
      if (!keep_row(a)) {
        row_clear(out, a);
      } else {
        row_and_mask(out, a, colmask);
      }
    }
    return out;
  };
  rel.xww = restrict_rows(rel.lww, transactional,
                          [&](std::size_t a) { return t.transactional(a); });
  rel.xwr = restrict_rows(rel.lwr, transactional,
                          [&](std::size_t a) { return t.transactional(a); });
  rel.xrw = restrict_rows(rel.lrw, transactional,
                          [&](std::size_t a) { return t.transactional(a); });
  rel.cww = restrict_rows(rel.xww, nonaborted,
                          [&](std::size_t a) { return t.nonaborted(a); });
  rel.cwr = restrict_rows(rel.xwr, nonaborted,
                          [&](std::size_t a) { return t.nonaborted(a); });
  rel.crw = restrict_rows(rel.xrw, nonaborted,
                          [&](std::size_t a) { return t.nonaborted(a); });
  return rel;
}

}  // namespace mtx::model
