// Happens-before (§2): the least transitive relation closed under
//
//   HBdefn   a hb c  if  a (init U po U cwr U cww) c
//   HBtrans  a hb c  if  a hb b hb c
//   HBww     a hb c  if  c plain, a lww c, and a crw b hb c   (programmer model)
//   ... plus the Example 2.3 variants, selected by ModelConfig.
//
// In the implementation model (§5) the side conditions are replaced by
// fence ordering:
//
//   HBCQ  <a:Cb> hb <c:Qx>  if a index-> c and txn b touches x
//   HBQB  <c:Qx> hb <b:B>   if c index-> b and txn b touches x
//
// Computed as a monotone fixpoint, semi-naively: one whole-relation closure
// seeds hb, then each round gathers the side-condition edges not yet
// present and inserts them with an incremental closure step that
// repropagates only the newly-derived reachability (see insert_closed in
// the .cpp).  The result is the same least fixpoint as the naive
// close/apply/repeat loop, without re-running Warshall per round.
#pragma once

#include "model/derived.hpp"
#include "model/model_config.hpp"
#include "model/trace.hpp"

namespace mtx::model {

BitRel compute_hb(const Trace& t, const Relations& rel, const ModelConfig& cfg);

// Same least fixpoint, with a closure fast path for *forward* seeds: when
// every seed edge respects index order (true of recorded traces, whose
// events append in global sequence order with monotone per-location
// versions), one pass in topological order replaces the O(n^3/64) Warshall
// closure.  Falls back to compute_hb's general closure otherwise, so the
// result is identical on every input (pinned by tests).  The streaming
// checker's per-window contexts use it.
BitRel compute_hb_fast(const Trace& t, const Relations& rel,
                       const ModelConfig& cfg);

}  // namespace mtx::model
