// Derived relations of §2: index, init, po, ww (coherence), wr (reads-from),
// rw (antidependency / from-read), the tx~ equivalence, and the lifted
// l/x/c variants of ww, wr, rw.
//
//   a l R b  iff  a R b, or a' R b' for some a' tx~ a !tx~ b tx~ b'
//   a x R b  iff  a l R b and a, b transactional
//   a c R b  iff  a x R b and a, b committed or live
//
// Antidependency handles aborted targets: b rw c iff a wr b and a ww c for
// some a, and c is plain or nonaborted.
#pragma once

#include "model/trace.hpp"
#include "substrate/bitrel.hpp"

namespace mtx::model {

struct Relations {
  BitRel index;  // absolute order of events
  BitRel init;   // initialization actions before all others
  BitRel po;     // index restricted to same thread
  BitRel ww;     // same-location writes ordered by timestamp
  BitRel wr;     // write fulfilling a read (same loc, value, timestamp)
  BitRel rw;     // antidependency: read before write it cannot follow
  BitRel tx;     // tx~ equivalence (includes identity)

  BitRel lww, lwr, lrw;  // lifted
  BitRel xww, xwr, xrw;  // lifted, restricted to transactional
  BitRel cww, cwr, crw;  // lifted, restricted to committed-or-live txns

  static Relations compute(const Trace& t);
};

// Lift base relation R over the tx~ equivalence of `t` (the "l" prefix).
BitRel lift(const Trace& t, const BitRel& r);

}  // namespace mtx::model
