// Derived relations of §2: index, init, po, ww (coherence), wr (reads-from),
// rw (antidependency / from-read), the tx~ equivalence, and the lifted
// l/x/c variants of ww, wr, rw.
//
//   a l R b  iff  a R b, or a' R b' for some a' tx~ a !tx~ b tx~ b'
//   a x R b  iff  a l R b and a, b transactional
//   a c R b  iff  a x R b and a, b committed or live
//
// Antidependency handles aborted targets: b rw c iff a wr b and a ww c for
// some a, and c is plain or nonaborted.
#pragma once

#include "model/trace.hpp"
#include "substrate/bitrel.hpp"

namespace mtx::model {

struct Relations {
  BitRel index;  // absolute order of events
  BitRel init;   // initialization actions before all others
  BitRel po;     // index restricted to same thread
  BitRel ww;     // same-location writes ordered by timestamp
  BitRel wr;     // write fulfilling a read (same loc, value, timestamp)
  BitRel rw;     // antidependency: read before write it cannot follow
  BitRel tx;     // tx~ equivalence (includes identity)

  BitRel lww, lwr, lrw;  // lifted
  BitRel xww, xwr, xrw;  // lifted, restricted to transactional
  BitRel cww, cwr, crw;  // lifted, restricted to committed-or-live txns

  // Reference builder: the O(n^2) pairwise loops straight off the paper's
  // definitions plus generic compose/filter steps.  Obviously correct;
  // quadratic-with-large-constant.  Litmus-scale entry points use it.
  static Relations compute(const Trace& t);

  // Word-parallel builder: same relations, built from per-thread /
  // per-location / per-transaction bit masks with O(n^2/64) row operations
  // instead of per-pair tests, and a block-structured lift instead of two
  // n^3/64 compositions.  Exact-equivalent to compute() on every trace
  // (pinned by tests); the streaming checker's per-window contexts use it.
  static Relations compute_fast(const Trace& t);
};

// Lift base relation R over the tx~ equivalence of `t` (the "l" prefix).
BitRel lift(const Trace& t, const BitRel& r);

}  // namespace mtx::model
