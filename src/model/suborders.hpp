// The suborder characterization of §5 and Appendix C, used to validate
// compiler optimizations.  Over non-boundary actions (Act \ TAct):
//
//   a po-T  b   iff a po b, a !tx~ b, b transactional, b's txn writes
//   a poT-  b   iff a po b, a !tx~ b, a in a resolved transaction
//   a poTT  b   iff a poT- b and a po-T b
//   a poRW  b   iff a po b, a a read, b a write
//   a poCon b   iff a po b and a, b conflict (same loc, one a write)
//
//   swe = (cwr U cww) \ po          external transactional communication
//   hbe = po-T ; (swe ; poTT)* ; swe ; poT-
//
// Lemma C.1:  hb = init U hbe U po        (implementation model)
// Lemma C.2:  consistency has an equivalent characterization over
//             hbe/poT-/po-T/poRW/wre/xrwe and (init U hbe U poCon).
#pragma once

#include "model/consistency.hpp"
#include "model/trace.hpp"

namespace mtx::model {

struct Suborders {
  BitRel po_T;    // ends in a transactional action of a writing txn
  BitRel poT_;    // begins in a resolved transactional action
  BitRel poTT;
  BitRel poRW;
  BitRel poCon;
  BitRel swe;
  BitRel hbe;
  BitRel wre;     // lwr \ po
  BitRel xrwe;    // xrw \ po

  static Suborders compute(const Trace& t, const Relations& rel);
  static Suborders compute(AnalysisContext& ctx);
};

// Lemma C.1: in the implementation model (without fences),
// hb == init U hbe U po.  The context overload expects a context built with
// ModelConfig::implementation(); the trace overload builds one.
bool lemma_c1_holds(const Trace& t);
bool lemma_c1_holds(AnalysisContext& ctx);

// Lemma C.2's alternative consistency characterization (implementation
// model, no anti axioms).
bool alt_consistent(const Trace& t);
bool alt_consistent(AnalysisContext& ctx);

}  // namespace mtx::model
