#include "model/sequentiality.hpp"

#include <algorithm>
#include <map>

namespace mtx::model {

bool is_L_sequential_action(const Trace& t, std::size_t c, const LocSet& locs) {
  const Action& ac = t[c];
  if (ac.is_boundary() || ac.is_qfence()) return true;
  if (!touches_locset(ac, locs)) return true;

  if (ac.is_write()) {
    // (1) no earlier-index write to the same location with a larger ts.
    for (std::size_t b = 0; b < c; ++b) {
      const Action& ab = t[b];
      if (ab.is_write() && ab.loc == ac.loc && ac.ts < ab.ts) return false;
    }
    return true;
  }

  // Read: (2) the fulfilling write has the largest timestamp among writes to
  // this location that precede the read in index order.
  for (std::size_t b = 0; b < c; ++b) {
    const Action& ab = t[b];
    if (ab.is_write() && ab.loc == ac.loc && ac.ts < ab.ts) return false;
  }
  return true;
}

bool is_L_weak_action(const Trace& t, std::size_t c, const LocSet& locs) {
  return !is_L_sequential_action(t, c, locs);
}

bool is_L_sequential_trace(const Trace& t, const LocSet& locs) {
  for (std::size_t i = 0; i < t.size(); ++i)
    if (!is_L_sequential_action(t, i, locs)) return false;
  return true;
}

bool is_contiguous(const Trace& t, std::size_t begin_idx) {
  const Thread s = t[begin_idx].thread;
  const int res = t.resolution_of(begin_idx);
  for (std::size_t c = begin_idx + 1; c < t.size(); ++c) {
    if (t[c].thread == s) continue;
    // Other-thread action after the begin: fine if the resolution precedes
    // it, or if thread s takes no further action after c.
    if (res >= 0 && static_cast<std::size_t>(res) < c) continue;
    bool s_acts_later = false;
    for (std::size_t d = c + 1; d < t.size(); ++d)
      if (t[d].thread == s) {
        s_acts_later = true;
        break;
      }
    if (s_acts_later) return false;
  }
  return true;
}

bool all_transactions_contiguous(const Trace& t) {
  for (std::size_t b : t.begins())
    if (!is_contiguous(t, b)) return false;
  return true;
}

bool all_transactions_resolved(const Trace& t) {
  for (std::size_t b : t.begins())
    if (t.txn_state(b) == TxnState::Live) return false;
  return true;
}

bool is_transactionally_L_sequential(const Trace& t, const LocSet& locs) {
  return is_L_sequential_trace(t, locs) && all_transactions_contiguous(t);
}

bool is_order_preserving_permutation(const Trace& sigma, const Trace& tau) {
  if (sigma.size() != tau.size()) return false;
  // Same multiset of actions by name, with identical payloads.
  std::map<int, std::size_t> by_name;
  for (std::size_t i = 0; i < tau.size(); ++i) by_name[tau[i].name] = i;
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    auto it = by_name.find(sigma[i].name);
    if (it == by_name.end()) return false;
    const Action& a = sigma[i];
    const Action& b = tau[it->second];
    if (a.kind != b.kind || a.thread != b.thread || a.loc != b.loc ||
        a.value != b.value || !(a.ts == b.ts) || a.peer != b.peer)
      return false;
  }
  // po coincides: per-thread subsequences are identical.
  std::map<Thread, std::vector<int>> po_sigma, po_tau;
  for (std::size_t i = 0; i < sigma.size(); ++i)
    po_sigma[sigma[i].thread].push_back(sigma[i].name);
  for (std::size_t i = 0; i < tau.size(); ++i)
    po_tau[tau[i].thread].push_back(tau[i].name);
  return po_sigma == po_tau;
}

std::optional<Trace> contiguous_permutation(const Trace& t, const ModelConfig& cfg) {
  AnalysisContext ctx(t, cfg);
  return contiguous_permutation(ctx);
}

std::optional<Trace> contiguous_permutation(AnalysisContext& ctx) {
  const Trace& t = ctx.trace();
  const Relations& rel = ctx.relations();
  const BitRel causal = ctx.hb() | rel.lwr | rel.xrw;
  const std::vector<std::size_t> topo = causal.topological_order();
  if (topo.empty() && t.size() > 0) return std::nullopt;

  // Position of each action in the linearization.
  std::vector<std::size_t> pos(t.size());
  for (std::size_t p = 0; p < topo.size(); ++p) pos[topo[p]] = p;

  // Class representative: the begin of the action's transaction, or itself.
  auto rep = [&](std::size_t i) -> std::size_t {
    const int b = t.txn_of(i);
    return b >= 0 ? static_cast<std::size_t>(b) : i;
  };

  // Order actions by (representative's linearization position, original
  // index).  All members of a transaction share the representative, so they
  // end up adjacent; the original-index tiebreak preserves po inside the
  // transaction, and cross-class order follows a causal linearization, so
  // thread order outside transactions is preserved too (po is in hb).
  std::vector<std::size_t> order(t.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t ra = pos[rep(a)];
    const std::size_t rb = pos[rep(b)];
    if (ra != rb) return ra < rb;
    return a < b;
  });
  return t.permuted(order);
}

}  // namespace mtx::model
