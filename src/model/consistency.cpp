#include "model/consistency.hpp"

namespace mtx::model {

std::string Analysis::failure() const {
  if (!wf.ok()) return "WF";
  if (!causality) return "Causality";
  if (!coherence) return "Coherence";
  if (!observation) return "Observation";
  if (!anti_ww) return "AntiWW";
  if (!anti_rw) return "AntiRW";
  if (!anti_ww_p) return "Anti'WW";
  if (!anti_rw_p) return "Anti'RW";
  return "";
}

Analysis analyze(AnalysisContext& ctx) {
  const ModelConfig& cfg = ctx.config();
  Analysis a;
  a.rel = ctx.relations();
  a.wf = ctx.wf_report();
  a.hb = ctx.hb();

  a.causality = (a.hb | a.rel.lwr | a.rel.xrw).is_acyclic();
  a.coherence = a.hb.compose(a.rel.lww).is_irreflexive();
  a.observation = a.hb.compose(a.rel.lrw).is_irreflexive();

  if (cfg.anti_ww)
    a.anti_ww = a.rel.crw.compose(a.hb).compose(a.rel.lww).is_irreflexive();
  if (cfg.anti_rw)
    a.anti_rw = a.rel.crw.compose(a.hb).compose(a.rel.lrw).is_irreflexive();
  if (cfg.anti_ww_p)
    a.anti_ww_p = a.hb.compose(a.rel.crw).compose(a.rel.lww).is_irreflexive();
  if (cfg.anti_rw_p)
    a.anti_rw_p = a.hb.compose(a.rel.crw).compose(a.rel.lrw).is_irreflexive();
  return a;
}

Analysis analyze(const Trace& t, const ModelConfig& cfg) {
  AnalysisContext ctx(t, cfg);
  return analyze(ctx);
}

bool consistent(AnalysisContext& ctx) { return analyze(ctx).consistent(); }

bool consistent(const Trace& t, const ModelConfig& cfg) {
  return analyze(t, cfg).consistent();
}

namespace {

bool axioms_hold_on(const Relations& rel, const BitRel& hb,
                    const ModelConfig& cfg) {
  // Every axiom asserts that some union or composition of relations has no
  // cycle (or no reflexive pair, which a composition chain turns into a
  // cycle through its endpoints).  A relation that points strictly up the
  // index order can satisfy neither, and forwardness is closed under union
  // and composition — so when every operand is forward (the invariant of
  // recorded traces, where events append in global sequence order), each
  // check passes by construction for the price of a subset test instead of
  // an O(edges * n/64) compose.  Enumerated litmus traces can order
  // relations backward and fall through to the full computation.
  const auto forward = [&](const BitRel& r) { return r.subset_of(rel.index); };
  const bool f_hb = forward(hb);
  if (!(f_hb && forward(rel.lwr) && forward(rel.xrw)))
    if (!(hb | rel.lwr | rel.xrw).is_acyclic()) return false;
  const bool f_lww = f_hb && forward(rel.lww);
  const bool f_lrw = f_hb && forward(rel.lrw);
  if (!f_lww && !hb.compose(rel.lww).is_irreflexive()) return false;
  if (!f_lrw && !hb.compose(rel.lrw).is_irreflexive()) return false;

  const bool anti_fast = (cfg.anti_ww || cfg.anti_rw || cfg.anti_ww_p ||
                          cfg.anti_rw_p) &&
                         f_hb && forward(rel.crw);
  if (cfg.anti_ww && !(anti_fast && f_lww) &&
      !rel.crw.compose(hb).compose(rel.lww).is_irreflexive())
    return false;
  if (cfg.anti_rw && !(anti_fast && f_lrw) &&
      !rel.crw.compose(hb).compose(rel.lrw).is_irreflexive())
    return false;
  if (cfg.anti_ww_p && !(anti_fast && f_lww) &&
      !hb.compose(rel.crw).compose(rel.lww).is_irreflexive())
    return false;
  if (cfg.anti_rw_p && !(anti_fast && f_lrw) &&
      !hb.compose(rel.crw).compose(rel.lrw).is_irreflexive())
    return false;
  return true;
}

}  // namespace

bool axioms_hold(AnalysisContext& ctx) {
  return axioms_hold_on(ctx.relations(), ctx.hb(), ctx.config());
}

bool axioms_hold(const Trace& t, const Relations& rel, const ModelConfig& cfg) {
  const BitRel hb = compute_hb(t, rel, cfg);
  return axioms_hold_on(rel, hb, cfg);
}

}  // namespace mtx::model
