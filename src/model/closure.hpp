// Causal closure (§4 / Appendix A): sigma # a ("sigma down a") removes all
// events that causally follow a:
//
//   b not-in (sigma # a)  iff  a (hb U lwr U xrw)+ b
//
// a itself remains.  The set-valued form sigma # phi removes the causal
// upclosure of every member of phi.
#pragma once

#include <vector>

#include "model/consistency.hpp"
#include "model/trace.hpp"

namespace mtx::model {

Trace causal_removal(const Trace& t, std::size_t a, const ModelConfig& cfg);
Trace causal_removal(AnalysisContext& ctx, std::size_t a);

Trace causal_removal_set(const Trace& t, const std::vector<std::size_t>& members,
                         const ModelConfig& cfg);
Trace causal_removal_set(AnalysisContext& ctx,
                         const std::vector<std::size_t>& members);

// Indices kept by causal_removal (for callers that need the mask).
std::vector<bool> causal_removal_mask(const Trace& t,
                                      const std::vector<std::size_t>& members,
                                      const ModelConfig& cfg);
std::vector<bool> causal_removal_mask(AnalysisContext& ctx,
                                      const std::vector<std::size_t>& members);

}  // namespace mtx::model
