#include "model/action.hpp"

namespace mtx::model {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Write: return "W";
    case Kind::Read: return "R";
    case Kind::Begin: return "B";
    case Kind::Commit: return "C";
    case Kind::Abort: return "A";
    case Kind::QFence: return "Q";
  }
  return "?";
}

std::string Action::str() const {
  std::string s = "<" + std::to_string(name) + ":";
  s += thread == kInitThread ? std::string("init") : "t" + std::to_string(thread);
  s += " ";
  s += kind_name(kind);
  switch (kind) {
    case Kind::Write:
    case Kind::Read:
      s += "x" + std::to_string(loc) + "=" + std::to_string(value) + "@" + ts.str();
      break;
    case Kind::Commit:
    case Kind::Abort:
      s += "(" + std::to_string(peer) + ")";
      break;
    case Kind::QFence:
      s += loc == kAllLocs ? "*" : "x" + std::to_string(loc);
      break;
    case Kind::Begin:
      break;
  }
  return s + ">";
}

Action make_write(Thread s, Loc x, Value v, Rational ts, int name) {
  Action a;
  a.kind = Kind::Write;
  a.thread = s;
  a.loc = x;
  a.value = v;
  a.ts = ts;
  a.name = name;
  return a;
}

Action make_read(Thread s, Loc x, Value v, Rational ts, int name) {
  Action a;
  a.kind = Kind::Read;
  a.thread = s;
  a.loc = x;
  a.value = v;
  a.ts = ts;
  a.name = name;
  return a;
}

Action make_begin(Thread s, int name) {
  Action a;
  a.kind = Kind::Begin;
  a.thread = s;
  a.name = name;
  return a;
}

Action make_commit(Thread s, int begin_name, int name) {
  Action a;
  a.kind = Kind::Commit;
  a.thread = s;
  a.peer = begin_name;
  a.name = name;
  return a;
}

Action make_abort(Thread s, int begin_name, int name) {
  Action a;
  a.kind = Kind::Abort;
  a.thread = s;
  a.peer = begin_name;
  a.name = name;
  return a;
}

Action make_qfence(Thread s, Loc x, int name) {
  Action a;
  a.kind = Kind::QFence;
  a.thread = s;
  a.loc = x;
  a.name = name;
  return a;
}

Action make_qfence_all(Thread s, int name) { return make_qfence(s, kAllLocs, name); }

}  // namespace mtx::model
