#include "model/opacity.hpp"

namespace mtx::model {

SerializationGraph serialization_graph(const Trace& t, const Relations& rel) {
  const std::size_t n = t.size();
  SerializationGraph g;
  g.edges = BitRel(n);
  g.txns = t.begins();

  // Class-level transactional dependency edges.  The x-variants are already
  // restricted to transactional endpoints and lifted over members, so
  // projecting to the begin representative loses nothing.
  auto add_class_edges = [&](const BitRel& r) {
    r.for_each([&](std::size_t a, std::size_t b) {
      const int ra = t.txn_of(a);
      const int rb = t.txn_of(b);
      if (ra >= 0 && rb >= 0 && ra != rb)
        g.edges.set(static_cast<std::size_t>(ra), static_cast<std::size_t>(rb));
    });
  };
  add_class_edges(rel.xwr);  // reads-from (writers are nonaborted by WF7)
  add_class_edges(rel.xrw);  // antidependency; aborted readers included
  add_class_edges(rel.cww);  // coherence among nonaborted transactions

  // Real-time order: a transaction resolved before another begins must
  // serialize first.
  for (std::size_t a : g.txns) {
    const int res = t.resolution_of(a);
    if (res < 0) continue;  // live: overlaps everything after its begin
    for (std::size_t b : g.txns)
      if (a != b && static_cast<std::size_t>(res) < b) g.edges.set(a, b);
  }

  const auto order = g.edges.topological_order();
  g.acyclic = !order.empty() || n == 0;
  if (g.acyclic) {
    for (std::size_t v : order)
      if (t[v].is_begin()) g.witness_order.push_back(v);
  }
  return g;
}

SerializationGraph serialization_graph(AnalysisContext& ctx) {
  return serialization_graph(ctx.trace(), ctx.relations());
}

bool opaque(AnalysisContext& ctx) { return serialization_graph(ctx).acyclic; }

bool opaque(const Trace& t) {
  AnalysisContext ctx(t);
  return opaque(ctx);
}

}  // namespace mtx::model
