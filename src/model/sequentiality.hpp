// L-sequentiality and contiguity (§4).
//
// An action c is L-sequential if it does not touch L, or is a boundary
// action, or both:
//   (1) there is no b index-> c with c ww b        (writes take the max ts)
//   (2) if a wr c, there is no b index-> c with a ww b
//                                                  (reads see the max ts)
// An action that is not L-sequential is L-weak.
//
// Transaction b is contiguous if every other-thread action between its begin
// and its resolution either follows the resolution or ends its thread's
// participation.  A trace is transactionally L-sequential when every action
// is L-sequential and every transaction is contiguous.
//
// This header also provides the order-preserving-permutation machinery of
// Lemma A.5: every consistent trace has an order-preserving permutation with
// contiguous transactions.
#pragma once

#include <optional>

#include "model/consistency.hpp"
#include "model/race.hpp"
#include "model/trace.hpp"

namespace mtx::model {

bool is_L_sequential_action(const Trace& t, std::size_t c, const LocSet& locs);
bool is_L_weak_action(const Trace& t, std::size_t c, const LocSet& locs);

// Every action of the trace is L-sequential.
bool is_L_sequential_trace(const Trace& t, const LocSet& locs);

bool is_contiguous(const Trace& t, std::size_t begin_idx);
bool all_transactions_contiguous(const Trace& t);
bool all_transactions_resolved(const Trace& t);

bool is_transactionally_L_sequential(const Trace& t, const LocSet& locs);

// po_sigma == po_tau and same action multiset (by name): tau is an
// order-preserving permutation of sigma.
bool is_order_preserving_permutation(const Trace& sigma, const Trace& tau);

// Lemma A.5 construction: an order-preserving permutation of `t` with
// contiguous transactions, built from a linearization of
// (hb U lwr U xrw)+.  Returns nullopt if that relation is cyclic (i.e. the
// trace fails Causality).
std::optional<Trace> contiguous_permutation(const Trace& t, const ModelConfig& cfg);
std::optional<Trace> contiguous_permutation(AnalysisContext& ctx);

}  // namespace mtx::model
