#include "model/analysis.hpp"

namespace mtx::model {

namespace {
// Thread-local so parallel window checks never race on the tallies; the
// pinning tests run their analyses on one thread and read a stable count.
thread_local AnalysisCounters g_counters;
}  // namespace

const Relations& AnalysisContext::relations() {
  if (!rel_) rel_ = fast_ ? Relations::compute_fast(t_) : Relations::compute(t_);
  return *rel_;
}

const BitRel& AnalysisContext::hb() {
  if (!hb_) {
    hb_ = fast_ ? compute_hb_fast(t_, relations(), cfg_)
                : compute_hb(t_, relations(), cfg_);
  }
  return *hb_;
}

const WfReport& AnalysisContext::wf_report() {
  if (!wf_) wf_ = check_wellformed(t_, relations());
  return *wf_;
}

AnalysisContext& ChainedAnalysis::advance(const Trace& w) {
  ctx_.emplace(w, cfg_);
  ctx_->fast_ = true;
  ++windows_;
  events_ += w.size();
  return *ctx_;
}

AnalysisCounters analysis_counters() { return g_counters; }

void reset_analysis_counters() { g_counters = AnalysisCounters{}; }

namespace detail {
void count_relations_compute() { ++g_counters.relations_computes; }
void count_hb_compute() { ++g_counters.hb_computes; }
}  // namespace detail

}  // namespace mtx::model
