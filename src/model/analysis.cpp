#include "model/analysis.hpp"

namespace mtx::model {

namespace {
// Thread-local so parallel window checks never race on the tallies; the
// pinning tests run their analyses on one thread and read a stable count.
thread_local AnalysisCounters g_counters;
}  // namespace

const Relations& AnalysisContext::relations() {
  if (!rel_) rel_ = Relations::compute(t_);
  return *rel_;
}

const BitRel& AnalysisContext::hb() {
  if (!hb_) hb_ = compute_hb(t_, relations(), cfg_);
  return *hb_;
}

const WfReport& AnalysisContext::wf_report() {
  if (!wf_) wf_ = check_wellformed(t_, relations());
  return *wf_;
}

AnalysisCounters analysis_counters() { return g_counters; }

void reset_analysis_counters() { g_counters = AnalysisCounters{}; }

namespace detail {
void count_relations_compute() { ++g_counters.relations_computes; }
void count_hb_compute() { ++g_counters.hb_computes; }
}  // namespace detail

}  // namespace mtx::model
