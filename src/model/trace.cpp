#include "model/trace.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace mtx::model {

Trace Trace::with_init(int num_locs) {
  Trace t;
  const int begin = t.append(make_begin(kInitThread));
  for (Loc x = 0; x < num_locs; ++x)
    t.append(make_write(kInitThread, x, 0, Rational(0)));
  t.append(make_commit(kInitThread, t.actions_[static_cast<std::size_t>(begin)].name));
  t.num_locs_ = num_locs;
  return t;
}

int Trace::append(Action a) {
  if (a.name < 0) a.name = next_name_++;
  next_name_ = std::max(next_name_, a.name + 1);
  if (a.is_memory_access() || a.is_qfence()) num_locs_ = std::max(num_locs_, a.loc + 1);
  actions_.push_back(a);
  recompute_structure();
  return static_cast<int>(actions_.size()) - 1;
}

int Trace::index_of_name(int name) const {
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (actions_[i].name == name) return static_cast<int>(i);
  return -1;
}

void Trace::recompute_structure() {
  // Membership per the paper: a belongs to transaction b when <b:B> po-> a
  // with no resolution of b in between.  Since po is per-thread index order,
  // walk each thread's actions keeping the open begin (if any).
  txn_of_.assign(actions_.size(), -1);
  std::map<Thread, int> open;  // thread -> begin index, -1 if none
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& a = actions_[i];
    auto it = open.find(a.thread);
    const int cur = it == open.end() ? -1 : it->second;
    if (a.is_begin()) {
      txn_of_[i] = static_cast<int>(i);
      open[a.thread] = static_cast<int>(i);
    } else if (a.is_resolution()) {
      // Resolution closes the begin it names (well-formedness makes this the
      // open one; tolerate malformed traces by matching on peer name).
      int b = cur;
      if (b < 0 || actions_[static_cast<std::size_t>(b)].name != a.peer)
        b = index_of_name(a.peer);
      txn_of_[i] = b;
      if (cur >= 0 && actions_[static_cast<std::size_t>(cur)].name == a.peer)
        open[a.thread] = -1;
    } else {
      txn_of_[i] = cur;  // member of the open txn, or plain
    }
  }
}

TxnState Trace::txn_state(std::size_t begin_idx) const {
  assert(actions_[begin_idx].is_begin());
  const int begin_name = actions_[begin_idx].name;
  for (const Action& a : actions_) {
    if (a.is_commit() && a.peer == begin_name) return TxnState::Committed;
    if (a.is_abort() && a.peer == begin_name) return TxnState::Aborted;
  }
  return TxnState::Live;
}

bool Trace::aborted(std::size_t i) const {
  const int b = txn_of_[i];
  if (b < 0) return false;
  return txn_state(static_cast<std::size_t>(b)) == TxnState::Aborted;
}

bool Trace::live(std::size_t i) const {
  const int b = txn_of_[i];
  if (b < 0) return false;
  return txn_state(static_cast<std::size_t>(b)) == TxnState::Live;
}

bool Trace::committed_txn_action(std::size_t i) const {
  const int b = txn_of_[i];
  if (b < 0) return false;
  return txn_state(static_cast<std::size_t>(b)) == TxnState::Committed;
}

std::vector<std::size_t> Trace::txn_members(std::size_t begin_idx) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (txn_of_[i] == static_cast<int>(begin_idx)) out.push_back(i);
  return out;
}

std::vector<std::size_t> Trace::begins() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (actions_[i].is_begin()) out.push_back(i);
  return out;
}

bool Trace::txn_touches(std::size_t begin_idx, Loc x) const {
  for (std::size_t i : txn_members(begin_idx))
    if (actions_[i].accesses(x)) return true;
  return false;
}

int Trace::resolution_of(std::size_t begin_idx) const {
  const int begin_name = actions_[begin_idx].name;
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (actions_[i].is_resolution() && actions_[i].peer == begin_name)
      return static_cast<int>(i);
  return -1;
}

Trace Trace::permuted(const std::vector<std::size_t>& order) const {
  assert(order.size() == actions_.size());
  Trace t;
  t.next_name_ = next_name_;
  t.num_locs_ = num_locs_;
  t.actions_.reserve(actions_.size());
  for (std::size_t pos : order) t.actions_.push_back(actions_[pos]);
  t.recompute_structure();
  return t;
}

Trace Trace::subsequence(const std::vector<bool>& keep) const {
  assert(keep.size() == actions_.size());
  Trace t;
  t.next_name_ = next_name_;
  t.num_locs_ = num_locs_;
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (keep[i]) t.actions_.push_back(actions_[i]);
  t.recompute_structure();
  return t;
}

Trace Trace::without_aborted() const {
  std::vector<bool> keep(actions_.size(), true);
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (aborted(i)) keep[i] = false;
  return subsequence(keep);
}

Trace Trace::without_qfences() const {
  std::vector<bool> keep(actions_.size(), true);
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (actions_[i].is_qfence()) keep[i] = false;
  return subsequence(keep);
}

Value Trace::final_value(Loc x) const {
  Value v = 0;
  Rational best(-1);
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& a = actions_[i];
    if (!a.is_write() || a.loc != x) continue;
    if (transactional(i) && !committed_txn_action(i)) continue;
    if (a.ts > best) {
      best = a.ts;
      v = a.value;
    }
  }
  return v;
}

Rational Trace::max_write_ts(Loc x) const {
  Rational best(0);
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& a = actions_[i];
    if (a.is_write() && a.loc == x && nonaborted(i) && a.ts > best) best = a.ts;
  }
  return best;
}

std::string Trace::str() const {
  std::string s;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    s += std::to_string(i) + ": " + actions_[i].str();
    if (transactional(i)) {
      s += "  [txn@" + std::to_string(txn_of_[i]);
      switch (txn_state(static_cast<std::size_t>(txn_of_[i]))) {
        case TxnState::Committed: s += " committed"; break;
        case TxnState::Aborted: s += " aborted"; break;
        case TxnState::Live: s += " live"; break;
      }
      s += "]";
    }
    s += "\n";
  }
  return s;
}

}  // namespace mtx::model
