#include "model/trace.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace mtx::model {

Trace Trace::with_init(int num_locs) {
  Trace t;
  const int begin = t.append(make_begin(kInitThread));
  for (Loc x = 0; x < num_locs; ++x)
    t.append(make_write(kInitThread, x, 0, Rational(0)));
  t.append(make_commit(kInitThread, t.actions_[static_cast<std::size_t>(begin)].name));
  t.num_locs_ = num_locs;
  return t;
}

int Trace::append(Action a) {
  if (a.name < 0) a.name = next_name_++;
  next_name_ = std::max(next_name_, a.name + 1);
  if (a.is_memory_access() || a.is_qfence()) num_locs_ = std::max(num_locs_, a.loc + 1);
  actions_.push_back(a);
  index_appended(actions_.size() - 1);
  return static_cast<int>(actions_.size()) - 1;
}

// Incorporates action i (the most recently pushed) into the structure
// caches.  Membership per the paper: a belongs to transaction b when
// <b:B> po-> a with no resolution of b in between; since po is per-thread
// index order, the open begin per thread is all the state required.
void Trace::index_appended(std::size_t i) {
  const Action& a = actions_[i];
  txn_of_.push_back(-1);
  state_of_.push_back(TxnState::Live);
  resolution_.push_back(-1);
  name_to_index_.emplace(a.name, static_cast<int>(i));  // first index wins

  // A malformed trace may resolve a name that only arrives later; adopt the
  // waiting resolutions now (first resolution in index order wins, matching
  // what a whole-trace scan would report).
  auto resolve = [&](std::size_t begin_idx, std::size_t res_idx) {
    txn_of_[res_idx] = static_cast<int>(begin_idx);
    if (actions_[begin_idx].is_begin() && state_of_[begin_idx] == TxnState::Live) {
      state_of_[begin_idx] = actions_[res_idx].is_commit() ? TxnState::Committed
                                                           : TxnState::Aborted;
      resolution_[begin_idx] = static_cast<int>(res_idx);
    }
  };
  if (auto w = pending_peer_.find(a.name); w != pending_peer_.end()) {
    for (std::size_t r : w->second) resolve(i, r);
    pending_peer_.erase(w);
  }

  auto it = open_.find(a.thread);
  const int cur = it == open_.end() ? -1 : it->second;
  if (a.is_begin()) {
    txn_of_[i] = static_cast<int>(i);
    open_[a.thread] = static_cast<int>(i);
  } else if (a.is_resolution()) {
    // Resolution closes the begin it names (well-formedness makes this the
    // open one; tolerate malformed traces by matching on peer name).
    int b = cur;
    if (b < 0 || actions_[static_cast<std::size_t>(b)].name != a.peer)
      b = index_of_name(a.peer);
    if (cur >= 0 && actions_[static_cast<std::size_t>(cur)].name == a.peer)
      open_[a.thread] = -1;
    if (b >= 0) {
      resolve(static_cast<std::size_t>(b), i);
    } else {
      txn_of_[i] = -1;
      pending_peer_[a.peer].push_back(i);
    }
  } else {
    txn_of_[i] = cur;  // member of the open txn, or plain
  }
}

void Trace::recompute_structure() {
  txn_of_.clear();
  state_of_.clear();
  resolution_.clear();
  name_to_index_.clear();
  open_.clear();
  pending_peer_.clear();
  txn_of_.reserve(actions_.size());
  state_of_.reserve(actions_.size());
  resolution_.reserve(actions_.size());
  for (std::size_t i = 0; i < actions_.size(); ++i) index_appended(i);
}

TxnState Trace::txn_state(std::size_t begin_idx) const {
  assert(actions_[begin_idx].is_begin());
  return state_of_[begin_idx];
}

std::vector<std::size_t> Trace::txn_members(std::size_t begin_idx) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (txn_of_[i] == static_cast<int>(begin_idx)) out.push_back(i);
  return out;
}

std::vector<std::size_t> Trace::begins() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (actions_[i].is_begin()) out.push_back(i);
  return out;
}

TxnLocCover::TxnLocCover(const Trace& t)
    : words_((static_cast<std::size_t>(t.num_locs()) + 63) / 64),
      bits_(t.size() * words_, 0),
      any_(t.size(), false) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    const int b = t.txn_of(i);
    if (b < 0) continue;
    const Action& a = t[i];
    if (!a.is_memory_access()) continue;
    const std::size_t bb = static_cast<std::size_t>(b);
    any_[bb] = true;
    if (a.loc < 0) continue;
    const std::size_t lx = static_cast<std::size_t>(a.loc);
    if (lx < 64 * words_) bits_[bb * words_ + lx / 64] |= 1ull << (lx % 64);
  }
}

bool Trace::txn_touches(std::size_t begin_idx, Loc x) const {
  for (std::size_t i : txn_members(begin_idx))
    if (actions_[i].accesses(x)) return true;
  return false;
}

bool Trace::txn_accesses_any(std::size_t begin_idx) const {
  for (std::size_t i : txn_members(begin_idx))
    if (actions_[i].is_memory_access()) return true;
  return false;
}

Trace Trace::permuted(const std::vector<std::size_t>& order) const {
  assert(order.size() == actions_.size());
  Trace t;
  t.next_name_ = next_name_;
  t.num_locs_ = num_locs_;
  t.actions_.reserve(actions_.size());
  for (std::size_t pos : order) t.actions_.push_back(actions_[pos]);
  t.recompute_structure();
  return t;
}

Trace Trace::subsequence(const std::vector<bool>& keep) const {
  assert(keep.size() == actions_.size());
  Trace t;
  t.next_name_ = next_name_;
  t.num_locs_ = num_locs_;
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (keep[i]) t.actions_.push_back(actions_[i]);
  t.recompute_structure();
  return t;
}

Trace Trace::without_aborted() const {
  std::vector<bool> keep(actions_.size(), true);
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (aborted(i)) keep[i] = false;
  return subsequence(keep);
}

Trace Trace::without_qfences() const {
  std::vector<bool> keep(actions_.size(), true);
  for (std::size_t i = 0; i < actions_.size(); ++i)
    if (actions_[i].is_qfence()) keep[i] = false;
  return subsequence(keep);
}

Value Trace::final_value(Loc x) const {
  Value v = 0;
  Rational best(-1);
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& a = actions_[i];
    if (!a.is_write() || a.loc != x) continue;
    if (transactional(i) && !committed_txn_action(i)) continue;
    if (a.ts > best) {
      best = a.ts;
      v = a.value;
    }
  }
  return v;
}

Rational Trace::max_write_ts(Loc x) const {
  Rational best(0);
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& a = actions_[i];
    if (a.is_write() && a.loc == x && nonaborted(i) && a.ts > best) best = a.ts;
  }
  return best;
}

std::string Trace::str() const {
  std::string s;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    s += std::to_string(i) + ": " + actions_[i].str();
    if (transactional(i)) {
      s += "  [txn@" + std::to_string(txn_of_[i]);
      switch (txn_state(static_cast<std::size_t>(txn_of_[i]))) {
        case TxnState::Committed: s += " committed"; break;
        case TxnState::Aborted: s += " aborted"; break;
        case TxnState::Live: s += " live"; break;
      }
      s += "]";
    }
    s += "\n";
  }
  return s;
}

}  // namespace mtx::model
