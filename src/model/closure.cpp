#include "model/closure.hpp"

namespace mtx::model {

std::vector<bool> causal_removal_mask(AnalysisContext& ctx,
                                      const std::vector<std::size_t>& members) {
  const Trace& t = ctx.trace();
  const Relations& rel = ctx.relations();
  const BitRel causal = ctx.hb() | rel.lwr | rel.xrw;

  // Per-pivot single-source reachability instead of a whole-relation
  // closure: members are few, the causal relation is sparse.
  std::vector<std::vector<std::size_t>> reach;
  reach.reserve(members.size());
  for (std::size_t a : members) reach.push_back(causal.reachable_from(a));

  std::vector<bool> keep(t.size(), true);
  for (const auto& r : reach)
    for (std::size_t b : r) keep[b] = false;
  // The pivot actions themselves stay (a in sigma # a) unless another
  // member causally reaches them -- and that is already what the loop
  // encodes: a pivot is only flagged false when it lies in some member's
  // reach set, i.e. when it is removed by another member (or by its own
  // cycle).
  return keep;
}

std::vector<bool> causal_removal_mask(const Trace& t,
                                      const std::vector<std::size_t>& members,
                                      const ModelConfig& cfg) {
  AnalysisContext ctx(t, cfg);
  return causal_removal_mask(ctx, members);
}

Trace causal_removal_set(AnalysisContext& ctx,
                         const std::vector<std::size_t>& members) {
  return ctx.trace().subsequence(causal_removal_mask(ctx, members));
}

Trace causal_removal_set(const Trace& t, const std::vector<std::size_t>& members,
                         const ModelConfig& cfg) {
  AnalysisContext ctx(t, cfg);
  return causal_removal_set(ctx, members);
}

Trace causal_removal(AnalysisContext& ctx, std::size_t a) {
  return causal_removal_set(ctx, {a});
}

Trace causal_removal(const Trace& t, std::size_t a, const ModelConfig& cfg) {
  return causal_removal_set(t, {a}, cfg);
}

}  // namespace mtx::model
