#include "model/closure.hpp"

namespace mtx::model {

std::vector<bool> causal_removal_mask(const Trace& t,
                                      const std::vector<std::size_t>& members,
                                      const ModelConfig& cfg) {
  const Relations rel = Relations::compute(t);
  const BitRel hb = compute_hb(t, rel, cfg);
  const BitRel causal = (hb | rel.lwr | rel.xrw).transitive_closure();
  std::vector<bool> keep(t.size(), true);
  for (std::size_t a : members)
    for (std::size_t b = 0; b < t.size(); ++b)
      if (causal.test(a, b)) keep[b] = false;
  // The pivot actions themselves stay (a in sigma # a), unless another
  // member causally follows them -- which the loop above already encodes.
  for (std::size_t a : members) {
    bool removed_by_other = false;
    for (std::size_t m : members)
      if (causal.test(m, a)) removed_by_other = true;
    if (!removed_by_other) keep[a] = true;
  }
  return keep;
}

Trace causal_removal_set(const Trace& t, const std::vector<std::size_t>& members,
                         const ModelConfig& cfg) {
  return t.subsequence(causal_removal_mask(t, members, cfg));
}

Trace causal_removal(const Trace& t, std::size_t a, const ModelConfig& cfg) {
  return causal_removal_set(t, {a}, cfg);
}

}  // namespace mtx::model
