#include "model/model_config.hpp"

namespace mtx::model {

ModelConfig ModelConfig::base() {
  ModelConfig c;
  c.name = "base";
  return c;
}

ModelConfig ModelConfig::programmer() {
  ModelConfig c;
  c.name = "programmer";
  c.hb_ww = true;
  c.anti_ww = true;
  return c;
}

ModelConfig ModelConfig::implementation() {
  ModelConfig c;
  c.name = "implementation";
  c.qfences = true;
  return c;
}

ModelConfig ModelConfig::strongest() {
  ModelConfig c;
  c.name = "strongest(x86)";
  c.hb_ww = c.hb_rw = c.hb_wr = true;
  c.hb_ww_p = c.hb_rw_p = c.hb_wr_p = true;
  c.anti_ww = c.anti_rw = true;
  c.anti_ww_p = c.anti_rw_p = true;
  return c;
}

ModelConfig ModelConfig::variant_hb_ww() {
  ModelConfig c = programmer();
  c.name = "HBww+AntiWW";
  return c;
}

ModelConfig ModelConfig::variant_hb_rw() {
  ModelConfig c;
  c.name = "HBrw+AntiRW";
  c.hb_rw = true;
  c.anti_rw = true;
  return c;
}

ModelConfig ModelConfig::variant_hb_wr() {
  ModelConfig c;
  c.name = "HBwr";
  c.hb_wr = true;
  return c;
}

ModelConfig ModelConfig::variant_hb_ww_p() {
  ModelConfig c;
  c.name = "HB'ww+Anti'WW";
  c.hb_ww_p = true;
  c.anti_ww_p = true;
  return c;
}

ModelConfig ModelConfig::variant_hb_rw_p() {
  ModelConfig c;
  c.name = "HB'rw+Anti'RW";
  c.hb_rw_p = true;
  c.anti_rw_p = true;
  return c;
}

ModelConfig ModelConfig::variant_hb_wr_p() {
  ModelConfig c;
  c.name = "HB'wr";
  c.hb_wr_p = true;
  return c;
}

std::vector<ModelConfig> ModelConfig::example_2_3_variants() {
  return {variant_hb_ww(),   variant_hb_rw(),   variant_hb_wr(),
          variant_hb_ww_p(), variant_hb_rw_p(), variant_hb_wr_p()};
}

}  // namespace mtx::model
