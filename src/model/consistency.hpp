// Consistency (§2): an execution is consistent iff it is well-formed and
//
//   Causality     (hb U lwr U xrw)  acyclic
//   Coherence     (hb ; lww)        irreflexive
//   Observation   (hb ; lrw)        irreflexive
//   AntiWW        (crw ; hb ; lww)  irreflexive        [programmer model]
//
// plus the Example 2.3 variant axioms when enabled:
//   AntiRW   (crw ; hb ; lrw)  irreflexive
//   Anti'WW  (hb ; crw ; lww)  irreflexive
//   Anti'RW  (hb ; crw ; lrw)  irreflexive
#pragma once

#include <string>

#include "model/analysis.hpp"
#include "model/derived.hpp"
#include "model/happens_before.hpp"
#include "model/model_config.hpp"
#include "model/trace.hpp"
#include "model/wellformed.hpp"

namespace mtx::model {

// A fully analyzed trace: relations, happens-before, well-formedness, and
// the verdict of every consistency axiom under the chosen model.
struct Analysis {
  Relations rel;
  BitRel hb;
  WfReport wf;

  bool causality = false;
  bool coherence = false;
  bool observation = false;
  bool anti_ww = true;    // trivially true when the axiom is disabled
  bool anti_rw = true;
  bool anti_ww_p = true;
  bool anti_rw_p = true;

  bool wellformed() const { return wf.ok(); }
  bool axioms_hold() const {
    return causality && coherence && observation && anti_ww && anti_rw &&
           anti_ww_p && anti_rw_p;
  }
  bool consistent() const { return wellformed() && axioms_hold(); }

  // Name of the first failed requirement ("WF", "Causality", ...), or "".
  std::string failure() const;
};

// Shared-engine form: relations/hb/wellformedness come from the context,
// computed at most once no matter how many checkers share it.
Analysis analyze(AnalysisContext& ctx);
Analysis analyze(const Trace& t, const ModelConfig& cfg);

// Shorthand: well-formed and all enabled axioms hold.
bool consistent(AnalysisContext& ctx);
bool consistent(const Trace& t, const ModelConfig& cfg);

// Axioms only (caller asserts well-formedness separately); useful when the
// same trace is checked under many configs.
bool axioms_hold(AnalysisContext& ctx);
bool axioms_hold(const Trace& t, const Relations& rel, const ModelConfig& cfg);

}  // namespace mtx::model
