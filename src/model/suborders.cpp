#include "model/suborders.hpp"

namespace mtx::model {

namespace {

// Does the transaction containing i include a write action?
bool txn_writes(const Trace& t, std::size_t i) {
  const int b = t.txn_of(i);
  if (b < 0) return false;
  for (std::size_t m : t.txn_members(static_cast<std::size_t>(b)))
    if (t[m].is_write()) return true;
  return false;
}

bool resolved_txn_action(const Trace& t, std::size_t i) {
  const int b = t.txn_of(i);
  if (b < 0) return false;
  return t.txn_state(static_cast<std::size_t>(b)) != TxnState::Live;
}

bool conflicting(const Action& a, const Action& b) {
  return a.is_memory_access() && b.is_memory_access() && a.loc == b.loc &&
         (a.is_write() || b.is_write());
}

}  // namespace

Suborders Suborders::compute(const Trace& t, const Relations& rel) {
  const std::size_t n = t.size();
  Suborders s;
  s.po_T = BitRel(n);
  s.poT_ = BitRel(n);
  s.poRW = BitRel(n);
  s.poCon = BitRel(n);

  auto nonboundary = [&](std::size_t i) { return !t[i].is_boundary(); };

  rel.po.for_each([&](std::size_t a, std::size_t b) {
    if (!nonboundary(a) || !nonboundary(b)) return;
    const bool same = t.same_txn(a, b);
    if (!same && t.transactional(b) && txn_writes(t, b)) s.po_T.set(a, b);
    if (!same && resolved_txn_action(t, a)) s.poT_.set(a, b);
    if (t[a].is_read() && t[b].is_write()) s.poRW.set(a, b);
    if (conflicting(t[a], t[b])) s.poCon.set(a, b);
  });
  s.poTT = s.po_T & s.poT_;

  s.swe = (rel.cwr | rel.cww) - rel.po;

  // hbe: external synchronization.  The paper writes
  //   po-T ; (swe ; poTT)* ; swe ; poT-
  // at transaction granularity; at action granularity lifted swe edges
  // compose through shared transaction members, so we close the middle over
  // swe U poTT and make the po-T / poT- borders optional (identity), which
  // is the action-level rendering of the same decomposition.
  const BitRel mid = (s.swe | s.poTT).transitive_closure();
  s.hbe = mid | s.po_T.compose(mid) | mid.compose(s.poT_) |
          s.po_T.compose(mid).compose(s.poT_);

  s.wre = rel.lwr - rel.po;
  s.xrwe = rel.xrw - rel.po;
  return s;
}

Suborders Suborders::compute(AnalysisContext& ctx) {
  return compute(ctx.trace(), ctx.relations());
}

bool lemma_c1_holds(const Trace& t) {
  AnalysisContext ctx(t, ModelConfig::implementation());
  return lemma_c1_holds(ctx);
}

bool lemma_c1_holds(AnalysisContext& ctx) {
  const Trace& t = ctx.trace();
  const Relations& rel = ctx.relations();
  const BitRel& hb = ctx.hb();
  const Suborders s = Suborders::compute(t, rel);

  // Soundness: the decomposition never exceeds hb.
  const BitRel rhs = (rel.init | s.hbe | rel.po).transitive_closure();
  if (!rhs.subset_of(hb)) return false;

  // Completeness on the pairs the decomposition characterizes: between
  // nontransactional (plain, non-boundary) actions, hb is exactly
  // init U hbe U po (closed).
  for (std::size_t a = 0; a < t.size(); ++a) {
    if (t[a].is_boundary() || t.transactional(a)) continue;
    for (std::size_t b = 0; b < t.size(); ++b) {
      if (t[b].is_boundary() || t.transactional(b)) continue;
      if (hb.test(a, b) != rhs.test(a, b)) return false;
    }
  }
  return true;
}

bool alt_consistent(const Trace& t) {
  AnalysisContext ctx(t, ModelConfig::implementation());
  return alt_consistent(ctx);
}

bool alt_consistent(AnalysisContext& ctx) {
  const Trace& t = ctx.trace();
  const Relations& rel = ctx.relations();
  const Suborders s = Suborders::compute(t, rel);

  const BitRel big = s.hbe | s.poT_ | s.po_T | s.poRW | s.wre | s.xrwe;
  if (!big.is_acyclic()) return false;

  const BitRel lhs = rel.init | s.hbe | s.poCon;
  if (!lhs.compose(rel.lww).is_irreflexive()) return false;
  if (!lhs.compose(rel.lrw).is_irreflexive()) return false;
  return true;
}

}  // namespace mtx::model
