// L-races (§4): two actions are in L-conflict if they access the same
// location in L, at least one is plain, at least one is a write, and neither
// is aborted.  (b, c) is an L-race when b and c are in L-conflict, b
// index-> c, but not b hb c.  Two transactional actions cannot race.
//
// A *mixed race* (§5) is an L-race between a transactional write and a plain
// write for some L; mixed-race freedom is the hypothesis of Lemma 5.1.
#pragma once

#include <vector>

#include "model/consistency.hpp"
#include "model/trace.hpp"

namespace mtx::model {

// Location sets as bitmaps indexed by Loc.
using LocSet = std::vector<bool>;

LocSet all_locs(const Trace& t);
LocSet loc_set(std::initializer_list<Loc> locs, int num_locs);

bool touches_locset(const Action& a, const LocSet& locs);

// L-conflict between trace indices i and j.
bool l_conflict(const Trace& t, std::size_t i, std::size_t j, const LocSet& locs);

struct Race {
  std::size_t first;   // earlier in index order
  std::size_t second;  // later in index order
};

// All L-races under the given happens-before.
std::vector<Race> find_l_races(const Trace& t, const BitRel& hb, const LocSet& locs);
std::vector<Race> find_l_races(AnalysisContext& ctx, const LocSet& locs);

bool has_l_race(const Trace& t, const BitRel& hb, const LocSet& locs);
bool has_l_race(AnalysisContext& ctx, const LocSet& locs);

// Is (b, c) specifically an L-race (b index-> c assumed by position order)?
bool is_l_race(const Trace& t, const BitRel& hb, std::size_t b, std::size_t c,
               const LocSet& locs);

// Mixed race: a race between a transactional write and a plain write on the
// same location (any location).
bool has_mixed_race(const Trace& t, const BitRel& hb);
bool has_mixed_race(AnalysisContext& ctx);

}  // namespace mtx::model
