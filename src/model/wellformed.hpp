// Well-formedness conditions WF1..WF11 of §2 and WF12 of §5 (quiescence
// fences), checked literally against a concrete trace and reported with
// per-rule diagnostics.
#pragma once

#include <string>
#include <vector>

#include "model/derived.hpp"
#include "model/trace.hpp"

namespace mtx::model {

struct WfViolation {
  int rule;  // 1..12
  std::string msg;
};

struct WfReport {
  std::vector<WfViolation> violations;
  bool ok() const { return violations.empty(); }
  bool violates(int rule) const;
  std::string str() const;
};

class AnalysisContext;

// Full check.  Precomputed relations may be passed to avoid recomputation;
// the context overload reads (and memoizes into) the shared engine.
WfReport check_wellformed(const Trace& t);
WfReport check_wellformed(const Trace& t, const Relations& rel);
WfReport check_wellformed(AnalysisContext& ctx);

bool wellformed(const Trace& t);

}  // namespace mtx::model
