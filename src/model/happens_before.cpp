#include "model/happens_before.hpp"

#include <utility>
#include <vector>

#include "model/analysis.hpp"

namespace mtx::model {

namespace {

// Inserts edge (a, c) into the transitively-closed `hb`, restoring closure
// by repropagating only the new reachability: every predecessor of a (and a
// itself) absorbs {c} plus c's successor row.  This is the semi-naive step
// -- derived edges that were already present cost nothing, and a fixpoint
// round that adds k edges costs O(k * n^2/64) instead of a whole-relation
// Warshall pass per round.
void insert_closed(BitRel& hb, std::size_t a, std::size_t c) {
  if (hb.test(a, c)) return;
  const std::size_t n = hb.size();
  for (std::size_t p = 0; p < n; ++p) {
    if (p != a && !hb.test(p, a)) continue;
    hb.set(p, c);
    hb.or_row(p, hb, c);
  }
}

// The hb seed: HBdefn edges plus (when the model has fences) the HBCQ/HBQB
// edges, which do not depend on hb and are added once.
BitRel seed_hb(const Trace& t, const Relations& rel, const ModelConfig& cfg) {
  const std::size_t n = t.size();
  BitRel hb = rel.init | rel.po | rel.cwr | rel.cww;

  if (cfg.qfences) {
    // A summary fence <Q*> stands for a <Qx> on every location, so its
    // touch test is "touches anything" — the per-location expansion would
    // produce exactly the same commit->fence / fence->begin edges.  The
    // touch tests run per fence x transaction pair (recorded scoped fences
    // expand to one <Qx> per covered location), so they go through a
    // one-pass TxnLocCover instead of a trace scan per query.
    std::vector<std::size_t> fences;
    for (std::size_t q = 0; q < n; ++q)
      if (t[q].is_qfence()) fences.push_back(q);
    if (!fences.empty()) {
      const TxnLocCover cover(t);
      for (std::size_t q : fences) {
        const Loc x = t[q].loc;
        for (std::size_t i = 0; i < n; ++i) {
          if (t[i].is_commit() && i < q) {
            const int b = t.index_of_name(t[i].peer);
            if (b >= 0 && cover.touches(static_cast<std::size_t>(b), x))
              hb.set(i, q);
          }
          if (t[i].is_begin() && q < i && cover.touches(i, x)) hb.set(q, i);
        }
      }
    }
  }
  return hb;
}

// The semi-naive side-condition fixpoint over an already-closed hb.
BitRel rule_fixpoint(const Trace& t, const Relations& rel,
                     const ModelConfig& cfg, BitRel hb) {
  auto plain = [&](std::size_t i) { return t.plain(i); };

  for (;;) {
    // M1(a,c): exists b with a crw b hb c.   M2(a,c): exists b, a hb b crw c.
    const BitRel m1 = rel.crw.compose(hb);
    const BitRel m2 = hb.compose(rel.crw);
    std::vector<std::pair<std::size_t, std::size_t>> fresh;
    auto gather = [&](const BitRel& lifted, const BitRel& m, bool plain_target) {
      lifted.for_each([&](std::size_t a, std::size_t c) {
        if (!m.test(a, c)) return;
        if (plain_target ? !plain(c) : !plain(a)) return;
        if (!hb.test(a, c)) fresh.emplace_back(a, c);
      });
    };
    if (cfg.hb_ww) gather(rel.lww, m1, /*plain_target=*/true);
    if (cfg.hb_rw) gather(rel.lrw, m1, /*plain_target=*/true);
    if (cfg.hb_wr) gather(rel.lwr, m1, /*plain_target=*/true);
    if (cfg.hb_ww_p) gather(rel.lww, m2, /*plain_target=*/false);
    if (cfg.hb_rw_p) gather(rel.lrw, m2, /*plain_target=*/false);
    if (cfg.hb_wr_p) gather(rel.lwr, m2, /*plain_target=*/false);

    if (fresh.empty()) return hb;
    for (const auto& [a, c] : fresh) insert_closed(hb, a, c);
  }
}

// One-pass closure of a *forward* seed (every edge (i,j) has i < j, i.e.
// the index order is already a topological order).  Builds predecessor rows
// in ascending target order: when j is reached, every direct predecessor
// i < j has its own predecessor row final, so pred(j) is the union of
// {i} ∪ pred(i) over direct predecessors i.  Direct predecessors are
// absorbed in descending order with a subsumption skip: if i already
// appeared in pred(j) via some i' > i, then pred(i) ⊆ pred(i') ⊆ pred(j)
// and the row-OR is free.  Each row is touched once — no Warshall pivots.
BitRel forward_closure(const BitRel& seed) {
  const std::size_t n = seed.size();
  const BitRel direct = seed.transposed();
  BitRel pred(n);
  std::vector<std::size_t> bits;
  for (std::size_t j = 0; j < n; ++j) {
    bits.clear();
    const std::uint64_t* row = direct.row(j);
    for (std::size_t w = 0; w < direct.row_words(); ++w) {
      std::uint64_t word = row[w];
      while (word) {
        bits.push_back(w * 64 + static_cast<std::size_t>(__builtin_ctzll(word)));
        word &= word - 1;
      }
    }
    for (auto it = bits.rbegin(); it != bits.rend(); ++it) {
      const std::size_t i = *it;
      if (pred.test(j, i)) continue;  // subsumed by a larger predecessor
      pred.set(j, i);
      pred.or_row(j, pred, i);
    }
  }
  return pred.transposed();
}

}  // namespace

BitRel compute_hb(const Trace& t, const Relations& rel, const ModelConfig& cfg) {
  detail::count_hb_compute();
  BitRel hb = seed_hb(t, rel, cfg);

  // One whole-relation closure seeds the fixpoint; afterwards hb stays
  // closed and each side-condition round only repropagates its fresh edges.
  hb = hb.transitive_closure();
  if (!cfg.any_hb_rule()) return hb;
  return rule_fixpoint(t, rel, cfg, std::move(hb));
}

BitRel compute_hb_fast(const Trace& t, const Relations& rel,
                       const ModelConfig& cfg) {
  detail::count_hb_compute();
  BitRel hb = seed_hb(t, rel, cfg);

  // Recorded traces order every seed edge forward: events append in global
  // sequence order, per-location versions grow with that order (so cww/cwr
  // point forward), and fences sink past open transactions before assembly.
  // For such seeds a single forward pass replaces the O(n^3/64) Warshall;
  // anything else (enumerated litmus traces can order ww backward) falls
  // back to the general closure.  Both produce the same least closure.
  if (hb.subset_of(rel.index)) {
    hb = forward_closure(hb);
  } else {
    hb = hb.transitive_closure();
  }
  if (!cfg.any_hb_rule()) return hb;
  return rule_fixpoint(t, rel, cfg, std::move(hb));
}

}  // namespace mtx::model
