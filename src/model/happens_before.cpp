#include "model/happens_before.hpp"

namespace mtx::model {

BitRel compute_hb(const Trace& t, const Relations& rel, const ModelConfig& cfg) {
  const std::size_t n = t.size();

  BitRel hb = rel.init | rel.po | rel.cwr | rel.cww;

  if (cfg.qfences) {
    // HBCQ / HBQB fence edges (these do not depend on hb, so add them once).
    for (std::size_t q = 0; q < n; ++q) {
      if (!t[q].is_qfence()) continue;
      const Loc x = t[q].loc;
      for (std::size_t i = 0; i < n; ++i) {
        if (t[i].is_commit() && i < q) {
          const int b = t.index_of_name(t[i].peer);
          if (b >= 0 && t.txn_touches(static_cast<std::size_t>(b), x)) hb.set(i, q);
        }
        if (t[i].is_begin() && q < i && t.txn_touches(i, x)) hb.set(q, i);
      }
    }
  }

  auto plain = [&](std::size_t i) { return t.plain(i); };

  for (;;) {
    hb = hb.transitive_closure();
    BitRel before = hb;

    if (cfg.any_hb_rule()) {
      // M1(a,c): exists b with a crw b hb c.   M2(a,c): exists b, a hb b crw c.
      const BitRel m1 = rel.crw.compose(hb);
      const BitRel m2 = hb.compose(rel.crw);
      auto apply = [&](const BitRel& lifted, const BitRel& m, bool plain_target) {
        lifted.for_each([&](std::size_t a, std::size_t c) {
          if (!m.test(a, c)) return;
          if (plain_target ? !plain(c) : !plain(a)) return;
          hb.set(a, c);
        });
      };
      if (cfg.hb_ww) apply(rel.lww, m1, /*plain_target=*/true);
      if (cfg.hb_rw) apply(rel.lrw, m1, /*plain_target=*/true);
      if (cfg.hb_wr) apply(rel.lwr, m1, /*plain_target=*/true);
      if (cfg.hb_ww_p) apply(rel.lww, m2, /*plain_target=*/false);
      if (cfg.hb_rw_p) apply(rel.lrw, m2, /*plain_target=*/false);
      if (cfg.hb_wr_p) apply(rel.lwr, m2, /*plain_target=*/false);
    }

    if (hb == before) return hb;
  }
}

}  // namespace mtx::model
