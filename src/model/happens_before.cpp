#include "model/happens_before.hpp"

#include <utility>
#include <vector>

#include "model/analysis.hpp"

namespace mtx::model {

namespace {

// Inserts edge (a, c) into the transitively-closed `hb`, restoring closure
// by repropagating only the new reachability: every predecessor of a (and a
// itself) absorbs {c} plus c's successor row.  This is the semi-naive step
// -- derived edges that were already present cost nothing, and a fixpoint
// round that adds k edges costs O(k * n^2/64) instead of a whole-relation
// Warshall pass per round.
void insert_closed(BitRel& hb, std::size_t a, std::size_t c) {
  if (hb.test(a, c)) return;
  const std::size_t n = hb.size();
  for (std::size_t p = 0; p < n; ++p) {
    if (p != a && !hb.test(p, a)) continue;
    hb.set(p, c);
    hb.or_row(p, hb, c);
  }
}

}  // namespace

BitRel compute_hb(const Trace& t, const Relations& rel, const ModelConfig& cfg) {
  detail::count_hb_compute();
  const std::size_t n = t.size();

  BitRel hb = rel.init | rel.po | rel.cwr | rel.cww;

  if (cfg.qfences) {
    // HBCQ / HBQB fence edges (these do not depend on hb, so add them once).
    for (std::size_t q = 0; q < n; ++q) {
      if (!t[q].is_qfence()) continue;
      const Loc x = t[q].loc;
      for (std::size_t i = 0; i < n; ++i) {
        if (t[i].is_commit() && i < q) {
          const int b = t.index_of_name(t[i].peer);
          if (b >= 0 && t.txn_touches(static_cast<std::size_t>(b), x)) hb.set(i, q);
        }
        if (t[i].is_begin() && q < i && t.txn_touches(i, x)) hb.set(q, i);
      }
    }
  }

  // One whole-relation closure seeds the fixpoint; afterwards hb stays
  // closed and each side-condition round only repropagates its fresh edges.
  hb = hb.transitive_closure();
  if (!cfg.any_hb_rule()) return hb;

  auto plain = [&](std::size_t i) { return t.plain(i); };

  for (;;) {
    // M1(a,c): exists b with a crw b hb c.   M2(a,c): exists b, a hb b crw c.
    const BitRel m1 = rel.crw.compose(hb);
    const BitRel m2 = hb.compose(rel.crw);
    std::vector<std::pair<std::size_t, std::size_t>> fresh;
    auto gather = [&](const BitRel& lifted, const BitRel& m, bool plain_target) {
      lifted.for_each([&](std::size_t a, std::size_t c) {
        if (!m.test(a, c)) return;
        if (plain_target ? !plain(c) : !plain(a)) return;
        if (!hb.test(a, c)) fresh.emplace_back(a, c);
      });
    };
    if (cfg.hb_ww) gather(rel.lww, m1, /*plain_target=*/true);
    if (cfg.hb_rw) gather(rel.lrw, m1, /*plain_target=*/true);
    if (cfg.hb_wr) gather(rel.lwr, m1, /*plain_target=*/true);
    if (cfg.hb_ww_p) gather(rel.lww, m2, /*plain_target=*/false);
    if (cfg.hb_rw_p) gather(rel.lrw, m2, /*plain_target=*/false);
    if (cfg.hb_wr_p) gather(rel.lwr, m2, /*plain_target=*/false);

    if (fresh.empty()) return hb;
    for (const auto& [a, c] : fresh) insert_closed(hb, a, c);
  }
}

}  // namespace mtx::model
