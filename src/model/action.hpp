// Action syntax of the paper (§2 "Actions" plus the §5 quiescence fence):
//
//   phi ::= <a:s W x v q>   write of v to x by thread s at timestamp q
//         | <a:s R x v q>   read of v from x at timestamp q
//         | <a:s B>         transaction begin (the begin's name names the txn)
//         | <a:s C b>       commit of transaction b
//         | <a:s A b>       abort of transaction b
//         | <a:s Q x>       quiescence fence on x   (implementation model, §5)
//
// Action names are unique identifiers; timestamps are rationals; values are
// integers; the reserved thread `init` performs initialization.
#pragma once

#include <cstdint>
#include <string>

#include "substrate/rational.hpp"

namespace mtx::model {

enum class Kind : std::uint8_t { Write, Read, Begin, Commit, Abort, QFence };

using Thread = int;
using Loc = int;
using Value = std::int64_t;

// The reserved initialization thread id.
inline constexpr Thread kInitThread = -1;

// Sentinel location for a *summary* quiescence fence <Q*>: one action that
// stands for the whole family { <Qx> | x a location of the trace }.  A
// whole-store runtime fence used to expand to one <Qx> per location, making
// every recorded fence O(|store|) actions; a summary fence is O(1) and
// induces exactly the per-location HBCQ/HBQB edges (and the WF12 check) the
// expansion would.  Only QFence actions may carry this location.
inline constexpr Loc kAllLocs = -2;

const char* kind_name(Kind k);

struct Action {
  Kind kind = Kind::Begin;
  Thread thread = 0;
  Loc loc = -1;       // Write/Read/QFence
  Value value = 0;    // Write/Read
  Rational ts{};      // Write/Read (a read carries its fulfilling write's ts)
  int name = -1;      // unique action name; assigned by Trace::append if -1
  int peer = -1;      // Commit/Abort: the *name* of the matching begin

  bool is_write() const { return kind == Kind::Write; }
  bool is_read() const { return kind == Kind::Read; }
  bool is_begin() const { return kind == Kind::Begin; }
  bool is_commit() const { return kind == Kind::Commit; }
  bool is_abort() const { return kind == Kind::Abort; }
  bool is_resolution() const { return is_commit() || is_abort(); }
  bool is_qfence() const { return kind == Kind::QFence; }
  // A whole-store fence <Q*> (see kAllLocs).
  bool is_summary_qfence() const { return is_qfence() && loc == kAllLocs; }
  // Does this fence claim quiescence for x?  (<Qx> itself, or <Q*>.)
  bool qfence_covers(Loc x) const {
    return is_qfence() && (loc == x || loc == kAllLocs);
  }
  bool is_memory_access() const { return is_write() || is_read(); }
  // TAct of §5: the transactional boundary actions.
  bool is_boundary() const { return is_begin() || is_resolution(); }

  // Does this action touch location x (read or write it)?  Fences are
  // handled separately (they name a location but do not access it).
  bool accesses(Loc x) const { return is_memory_access() && loc == x; }

  std::string str() const;
};

Action make_write(Thread s, Loc x, Value v, Rational ts, int name = -1);
Action make_read(Thread s, Loc x, Value v, Rational ts, int name = -1);
Action make_begin(Thread s, int name = -1);
Action make_commit(Thread s, int begin_name, int name = -1);
Action make_abort(Thread s, int begin_name, int name = -1);
Action make_qfence(Thread s, Loc x, int name = -1);
// The summary whole-store fence <Q*>.
Action make_qfence_all(Thread s, int name = -1);

}  // namespace mtx::model
