// Graphviz export of executions: transactions as clusters (solid for
// committed/live, dashed for aborted, mirroring the paper's figures) with
// po / wr / ww / rw edges, and optionally the derived happens-before.
#pragma once

#include <string>

#include "model/consistency.hpp"
#include "model/trace.hpp"

namespace mtx::model {

struct DotOptions {
  bool show_po = true;
  bool show_wr = true;
  bool show_ww = true;
  bool show_rw = true;
  bool show_hb = false;  // hb is dense; off by default
  bool include_init = false;
};

std::string to_dot(const Trace& t, const Analysis& an, DotOptions opts = {});

}  // namespace mtx::model
