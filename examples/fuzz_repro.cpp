// Reproduce one fuzz campaign job locally: regenerate program #INDEX from
// the generator seed, print its litmus source, and re-run it on one (or
// every) backend under the same schedule-perturbation seeds the campaign
// used — the workflow for triaging a nightly counterexample (the artifact's
// header line names the id "fz<seed>-<index>", the backend, and the
// failing schedule seed).
//
// Usage: fuzz_repro --seed S --index I [--backend NAME] [--sched K]
//                   [--sched-seed X] [--threads N] [--stmts N] [--shrink]
//
// --sched-seed re-runs exactly one recorded execution under schedule seed X
// (as printed in a counterexample header) instead of the campaign's K
// derived rounds.  Generator shape flags must match the campaign's
// (defaults match the campaign defaults).  Exits 1 when any run diverges.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/campaign.hpp"
#include "fuzz/fuzz.hpp"
#include "stm/backend.hpp"

int main(int argc, char** argv) {
  using namespace mtx;
  std::uint64_t seed = 1;
  int index = 0;
  std::string backend;
  fuzz::FuzzOptions fopts;
  fopts.shrink = false;
  std::uint64_t sched_seed = 0;
  bool have_sched_seed = false;
  lit::RandomProgramParams params = campaign::default_fuzz_params();
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0)
      seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (std::strcmp(argv[i], "--index") == 0)
      index = std::atoi(next("--index"));
    else if (std::strcmp(argv[i], "--backend") == 0)
      backend = next("--backend");
    else if (std::strcmp(argv[i], "--sched") == 0)
      fopts.sched_rounds = std::atoi(next("--sched"));
    else if (std::strcmp(argv[i], "--sched-seed") == 0) {
      sched_seed = std::strtoull(next("--sched-seed"), nullptr, 10);
      have_sched_seed = true;
    } else if (std::strcmp(argv[i], "--threads") == 0)
      params.threads = std::atoi(next("--threads"));
    else if (std::strcmp(argv[i], "--stmts") == 0)
      params.stmts_per_thread = std::atoi(next("--stmts"));
    else if (std::strcmp(argv[i], "--shrink") == 0)
      fopts.shrink = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (index < 0) {
    std::fprintf(stderr, "--index must be >= 0\n");
    return 2;
  }
  if (!backend.empty() && !stm::make_backend(backend)) {
    std::fprintf(stderr, "unknown backend: %s\n", backend.c_str());
    return 2;
  }

  const auto progs = fuzz::fuzz_programs(seed, index + 1, params);
  const fuzz::FuzzProgram fp =
      fuzz::prepare_fuzz_program(progs.back(), seed, index, fopts.enum_budget);
  std::printf("%s", lit::to_source(fp.program).c_str());
  std::printf("# model outcomes: %zu%s\n\n", fp.model.size(),
              fp.model_truncated ? " (truncated)" : "");

  int bad = 0;
  for (const std::string& b : stm::backend_names()) {
    if (!backend.empty() && b != backend) continue;
    fuzz::FuzzOptions o = fopts;
    if (have_sched_seed) {
      o.use_exact_sched = true;
      o.exact_sched_seed = sched_seed;
    }
    const fuzz::FuzzRow row = fuzz::run_fuzz_job(fp, b, o);
    const std::string verdict =
        row.ok() ? "conformant" : "DIVERGENT: " + row.failure;
    std::printf("%-6s %s  (wf=%d member=%d path=%d opacity=%d races=%zu)\n",
                b.c_str(), verdict.c_str(), row.wellformed, row.outcome_member,
                row.path_ok, row.opacity_ok, row.l_races);
    if (!row.ok()) {
      ++bad;
      if (!row.repro.empty()) std::printf("%s\n", row.repro.c_str());
    }
  }
  return bad ? 1 : 0;
}
