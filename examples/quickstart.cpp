// Quickstart: the two halves of the library in one page.
//
//  1. Run real transactions on the TL2 runtime (typed TVars, retry,
//     explicit abort).
//  2. Model-check a litmus program against the paper's programmer model and
//     print its allowed final outcomes.
#include <cstdio>

#include "litmus/graph_enum.hpp"
#include "stm/tl2.hpp"
#include "substrate/threading.hpp"

int main() {
  using namespace mtx;

  // ---- 1. Runtime ----------------------------------------------------
  stm::Tl2Stm stm;
  stm::TVar<long> balance(100);

  // Concurrent deposits: each transaction reads, computes, writes.
  run_team(4, [&](std::size_t) {
    for (int i = 0; i < 1000; ++i)
      stm.atomically([&](auto& tx) { balance.set(tx, balance.get(tx) + 1); });
  });
  std::printf("balance after 4x1000 deposits: %ld (expected 4100)\n",
              balance.plain_get());

  // Explicit abort: the paper's `abort` statement ends the block, no retry.
  const bool committed = stm.atomically([&](auto& tx) {
    balance.set(tx, 0);
    tx.user_abort();  // never happens
  });
  std::printf("aborted txn committed? %s; balance still %ld\n",
              committed ? "yes" : "no", balance.plain_get());
  std::printf("runtime stats: %s\n\n", stm.stats().str().c_str());

  // ---- 2. Model checker ----------------------------------------------
  // The §1 privatization program:
  //   atomic_a { if !y then x:=1 }  ||  atomic_b { y:=1 }; x:=2
  using namespace mtx::lit;
  Program p;
  p.name = "privatization";
  p.num_locs = 2;  // x=0, y=1
  p.add_thread({atomic({read(0, at(1)), if_then(eq(0, 0), {write(at(0), 1)})}, "a")});
  p.add_thread({atomic({write(at(1), 1)}, "b"), write(at(0), 2)});

  const OutcomeSet outcomes =
      enumerate_outcomes(p, model::ModelConfig::programmer());
  std::printf("privatization outcomes under the programmer model:\n%s",
              outcomes.str().c_str());
  std::printf("final x==1 possible? %s (the paper forbids it)\n",
              outcomes.any([](const Outcome& o) { return o.loc(0) == 1; })
                  ? "yes"
                  : "no");
  return 0;
}
