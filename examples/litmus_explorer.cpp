// Interactive-ish litmus explorer: list the paper's catalog, and for a
// chosen entry print every consistent execution trace and the outcome set
// under a chosen model.
//
//   litmus_explorer                       list entries
//   litmus_explorer E01                   run E01 under all its expected configs
//   litmus_explorer E01 programmer        run one config, dumping traces
//   litmus_explorer E01 programmer --dot  emit Graphviz for each execution
#include <cstdio>
#include <cstring>
#include <string>

#include "litmus/catalog.hpp"
#include "model/dot.hpp"

int main(int argc, char** argv) {
  using namespace mtx::lit;

  if (argc < 2) {
    std::printf("%-6s %-40s %s\n", "id", "paper reference", "witness");
    for (const LitmusTest& t : catalog())
      std::printf("%-6s %-40s %s\n", t.id.c_str(), t.paper_ref.c_str(),
                  t.witness_desc.c_str());
    std::printf("\nusage: litmus_explorer <id> [model-config]\n");
    return 0;
  }

  const std::string id = argv[1];
  const LitmusTest* test = nullptr;
  for (const LitmusTest& t : catalog())
    if (t.id == id) test = &t;
  if (!test) {
    std::fprintf(stderr, "unknown catalog id '%s'\n", id.c_str());
    return 1;
  }

  if (argc >= 3) {
    bool emit_dot = false;
    for (int i = 3; i < argc; ++i)
      if (std::strcmp(argv[i], "--dot") == 0) emit_dot = true;
    const auto cfg = config_by_name(argv[2]);
    GraphEnum e(test->program, cfg);
    std::size_t n = 0;
    e.for_each([&](const Execution& ex) {
      std::printf("---- execution %zu ----\n%s", ++n, ex.trace.str().c_str());
      if (emit_dot) {
        const auto an = mtx::model::analyze(ex.trace, cfg);
        std::printf("%s", mtx::model::to_dot(ex.trace, an).c_str());
      }
    });
    const OutcomeSet set = enumerate_outcomes(test->program, cfg);
    std::printf("\n%zu consistent executions, %zu distinct outcomes:\n%s", n,
                set.size(), set.str().c_str());
    std::printf("witness '%s': %s\n", test->witness_desc.c_str(),
                set.any(test->witness) ? "Allowed" : "Forbidden");
    return 0;
  }

  std::printf("%s (%s), witness: %s\n\n", test->id.c_str(),
              test->paper_ref.c_str(), test->witness_desc.c_str());
  for (const Expectation& exp : test->expected) {
    const VerdictRow row = run_verdict(*test, exp);
    std::printf("  %-16s paper: %-9s measured: %-9s %s\n", exp.config.c_str(),
                exp.allowed ? "Allowed" : "Forbidden",
                row.actual_allowed ? "Allowed" : "Forbidden",
                row.matches() ? "(ok)" : "(MISMATCH)");
  }
  return 0;
}
