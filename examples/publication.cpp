// The publication idiom end to end (§1):
//
//   model view:    final z == 0 is forbidden in every model — the reader's
//                  transactional dependency on the flag orders the plain
//                  payload write, with no fence anywhere;
//   runtime view:  plain-initialize, transactionally publish, consume;
//                  the payload is never seen uninitialized.
#include <atomic>
#include <cstdio>

#include "litmus/graph_enum.hpp"
#include "stm/tl2.hpp"
#include "substrate/threading.hpp"

namespace {

using namespace mtx;
using namespace mtx::lit;

void model_view() {
  // x:=1; atomic_a{ y:=1 }  ||  atomic_b{ z:=2; if y then z:=x }
  Program p;
  p.num_locs = 3;  // x=0 y=1 z=2
  p.add_thread({write(at(0), 1), atomic({write(at(1), 1)}, "a")});
  p.add_thread({atomic({write(at(2), 2), read(0, at(1)),
                        if_then(ne(0, 0), {read(1, at(0)), write(at(2), reg(1))})},
                       "b")});

  for (const auto& cfg :
       {model::ModelConfig::base(), model::ModelConfig::programmer(),
        model::ModelConfig::implementation(), model::ModelConfig::strongest()}) {
    const OutcomeSet set = enumerate_outcomes(p, cfg);
    std::printf("  %-16s final z==0: %s\n", cfg.name.c_str(),
                set.any([](const Outcome& o) { return o.loc(2) == 0; })
                    ? "Allowed"
                    : "Forbidden");
  }
}

void runtime_view() {
  stm::Tl2Stm stm;
  long bad = 0;
  for (int round = 0; round < 2000; ++round) {
    stm::Cell flag(0), payload(0);
    run_team(2, [&](std::size_t tid) {
      if (tid == 0) {
        payload.plain_store(42);                               // plain init
        stm.atomically([&](auto& tx) { tx.write(flag, 1); });  // publish
      } else {
        stm::word_t f = 0;
        stm.atomically([&](auto& tx) { f = tx.read(flag); });
        if (f == 1 && payload.plain_load() != 42) ++bad;
      }
    });
  }
  std::printf("\nruntime: 2000 publish/consume rounds, %ld uninitialized "
              "observations (expect 0, no fence used)\n",
              bad);
}

}  // namespace

int main() {
  std::printf("publication verdicts per model:\n");
  model_view();
  runtime_view();
  return 0;
}
