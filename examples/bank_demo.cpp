// The bank workload across all three backends: concurrent transfers with a
// conserved total, a transactional audit, and a privatization-style plain
// audit behind a quiescence fence.  Prints throughput and abort rates so the
// backend trade-offs (lazy vs eager vs global lock) are visible.
#include <chrono>
#include <cstdio>

#include "containers/bank.hpp"
#include "stm/eager.hpp"
#include "stm/sgl.hpp"
#include "stm/tl2.hpp"
#include "substrate/rng.hpp"
#include "substrate/threading.hpp"

namespace {

using namespace mtx;

template <typename Stm>
void run_backend(const char* name) {
  Stm stm;
  containers::Bank<Stm> bank(stm, 128, 1000);
  const std::size_t threads = std::min<std::size_t>(hw_threads(), 8);
  constexpr int kTransfers = 20000;

  const auto start = std::chrono::steady_clock::now();
  run_team(threads, [&](std::size_t tid) {
    Rng rng(tid + 1);
    for (int i = 0; i < kTransfers; ++i) {
      const auto from = static_cast<std::size_t>(rng.below(bank.size()));
      const auto to =
          (from + 1 + static_cast<std::size_t>(rng.below(bank.size() - 1))) %
          bank.size();
      bank.transfer(from, to, rng.range(1, 10));
    }
  });
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const auto total = bank.total();
  const auto audited = bank.audit_after_quiesce();
  const double ops = static_cast<double>(threads * kTransfers);
  std::printf(
      "%-8s %8.0f transfers/s | txn total %lld, plain audit %lld (expected "
      "%lld) | %s\n",
      name, ops / elapsed, static_cast<long long>(total),
      static_cast<long long>(audited),
      static_cast<long long>(bank.expected_total()), stm.stats().str().c_str());
}

}  // namespace

int main() {
  std::printf("bank: %zu threads x 20000 transfers over 128 accounts\n",
              std::min<std::size_t>(hw_threads(), 8));
  run_backend<stm::Tl2Stm>("tl2");
  run_backend<stm::EagerStm>("eager");
  run_backend<stm::SglStm>("sgl");
  return 0;
}
