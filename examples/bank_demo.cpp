// The bank workload across every registered backend: concurrent transfers
// with a conserved total, a transactional audit, and a privatization-style
// plain audit behind a quiescence fence.  Prints throughput and abort rates
// so the backend trade-offs (lazy vs eager vs NOrec vs global lock) are
// visible.  One loop over the StmBackend registry drives all of them.
#include <chrono>
#include <cstdio>

#include "containers/bank.hpp"
#include "stm/backend.hpp"
#include "substrate/rng.hpp"
#include "substrate/threading.hpp"

namespace {

using namespace mtx;

void run_backend(stm::StmBackend& stm) {
  containers::Bank<stm::StmBackend> bank(stm, 128, 1000);
  const std::size_t threads = std::min<std::size_t>(hw_threads(), 8);
  constexpr int kTransfers = 20000;

  const auto start = std::chrono::steady_clock::now();
  run_team(threads, [&](std::size_t tid) {
    Rng rng(tid + 1);
    for (int i = 0; i < kTransfers; ++i) {
      const auto from = static_cast<std::size_t>(rng.below(bank.size()));
      const auto to =
          (from + 1 + static_cast<std::size_t>(rng.below(bank.size() - 1))) %
          bank.size();
      bank.transfer(from, to, rng.range(1, 10));
    }
  });
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const auto total = bank.total();
  const auto audited = bank.audit_after_quiesce();
  const double ops = static_cast<double>(threads * kTransfers);
  std::printf(
      "%-8s %8.0f transfers/s | txn total %lld, plain audit %lld (expected "
      "%lld) | %s\n",
      stm.name().c_str(), ops / elapsed, static_cast<long long>(total),
      static_cast<long long>(audited),
      static_cast<long long>(bank.expected_total()), stm.stats().str().c_str());
}

}  // namespace

int main() {
  std::printf("bank: %zu threads x 20000 transfers over 128 accounts\n",
              std::min<std::size_t>(mtx::hw_threads(), 8));
  for (const std::string& name : mtx::stm::backend_names()) {
    auto stm = mtx::stm::make_backend(name);
    run_backend(*stm);
  }
  return 0;
}
