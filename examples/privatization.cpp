// The privatization idiom end to end (§1, §2, §5):
//
//   model view:    forbidden outcome x==1 under the programmer model,
//                  allowed in the fence-free implementation model, and
//                  forbidden again once a quiescence fence is inserted;
//   runtime view:  a privatize-then-work-plainly protocol on TL2 with the
//                  quiescence fence, stress-checked for interference.
#include <atomic>
#include <cstdio>

#include "litmus/catalog.hpp"
#include "stm/tl2.hpp"
#include "substrate/threading.hpp"

namespace {

using namespace mtx;
using namespace mtx::lit;

void model_view() {
  Program fenceless;
  fenceless.num_locs = 2;
  fenceless.add_thread(
      {atomic({read(0, at(1)), if_then(eq(0, 0), {write(at(0), 1)})}, "a")});
  fenceless.add_thread({atomic({write(at(1), 1)}, "b"), write(at(0), 2)});

  Program fenced = fenceless;
  fenced.threads[1] = {atomic({write(at(1), 1)}, "b"), qfence(0), write(at(0), 2)};

  auto witness = [](const Outcome& o) { return o.loc(0) == 1; };
  auto verdict = [&](const Program& p, const model::ModelConfig& cfg) {
    return enumerate_outcomes(p, cfg).any(witness) ? "Allowed" : "Forbidden";
  };

  std::printf("outcome 'final x == 1':\n");
  std::printf("  programmer model,          no fence: %s\n",
              verdict(fenceless, model::ModelConfig::programmer()));
  std::printf("  implementation model,      no fence: %s\n",
              verdict(fenceless, model::ModelConfig::implementation()));
  std::printf("  implementation model, with Q(x):     %s\n",
              verdict(fenced, model::ModelConfig::implementation()));
}

void runtime_view() {
  stm::Tl2Stm stm;
  stm::Cell flag(0);
  stm::Cell account(0);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  run_team(3, [&](std::size_t tid) {
    if (tid > 0) {
      // Mutators deposit while the account is shared.
      while (!stop) {
        stm.atomically([&](auto& tx) {
          if (tx.read(flag) == 0)
            tx.write(account, tx.read(account) + 1);
        });
      }
      return;
    }
    for (int round = 0; round < 500; ++round) {
      // Privatize: from now on mutators keep their hands off.
      stm.atomically([&](auto& tx) { tx.write(flag, 1); });
      // Quiescence fence: wait out transactions still in flight (§5).
      stm.quiesce();
      // Plain phase: we own `account`.
      const auto before = account.plain_load();
      account.plain_store(before * 2);
      if (account.plain_load() != before * 2) violations.fetch_add(1);
      account.plain_store(before);
      stm.atomically([&](auto& tx) { tx.write(flag, 0); });
    }
    stop = true;
  });

  std::printf("\nruntime protocol: 500 privatize/work/share rounds, "
              "%ld interference violations (expect 0)\n",
              violations.load());
  std::printf("stats: %s\n", stm.stats().str().c_str());
}

}  // namespace

int main() {
  model_view();
  runtime_view();
  return 0;
}
