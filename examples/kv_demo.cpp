// KV workload engine quick-start: a sharded transactional store on one
// registered backend, the two mixed-access fast paths demonstrated by hand,
// then a couple of standard mixes driven with latency reporting and sampled
// runtime conformance.
//
// Usage: kv_demo [--backend NAME] [--threads N] [--ops N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kv/kvstore.hpp"
#include "kv/workload.hpp"
#include "stm/backend.hpp"
#include "substrate/format.hpp"

int main(int argc, char** argv) {
  using namespace mtx;
  std::string backend = "tl2";
  std::size_t threads = 3;
  std::uint64_t ops = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc)
      backend = argv[++i];
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc)
      ops = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  auto stm = stm::make_backend(backend);
  if (!stm) {
    std::fprintf(stderr, "unknown backend: %s\n", backend.c_str());
    return 2;
  }

  // --- the store and its mixed-access protocols, by hand ---
  kv::KvStore::Options so;
  so.shards = 4;
  so.expected_keys = 64;
  kv::KvStore store(*stm, so);
  for (std::int64_t k = 0; k < 32; ++k) store.put(k, k * 100);
  store.publish_snapshot({0, 1, 2, 3});

  std::printf("store: %zu keys across %zu shards (%zu buckets each)\n",
              store.size(), store.shards(), store.bucket_count(0));

  // privatize-scan: flag + quiescence fence, then plain-access reads.
  const kv::ScanResult scan = store.privatize_scan(store.shard_of(5));
  std::printf("privatize-scan of shard %zu: %zu keys, value sum %lld\n",
              store.shard_of(5), scan.keys,
              static_cast<long long>(scan.value_sum));

  // snapshot-read: publication handoff once, then pure plain loads.
  store.snapshot_attach();
  std::int64_t frozen = 0;
  store.snapshot_read(2, &frozen);
  store.put(2, 999999);  // later transactional update...
  std::int64_t now = 0;
  store.get(2, &now);
  store.snapshot_read(2, &frozen);
  std::printf("key 2: live value %lld, frozen snapshot value %lld\n\n",
              static_cast<long long>(now), static_cast<long long>(frozen));

  // --- standard mixes under load, sampled conformance on ---
  Table t({"mix", "ops/s", "p50us", "p99us", "scans", "windows", "verdict"});
  for (const char* name : {"a", "priv_heavy", "pub_heavy"}) {
    auto fresh = stm::make_backend(backend);
    kv::KvWorkloadOptions o;
    o.threads = threads;
    o.seed = 7;
    o.ops_per_thread = ops / (threads ? threads : 1);
    o.store.preload_keys = 24;
    o.store.shards = 2;
    o.store.snap_keys = 4;
    o.sample_every = 4;
    o.round_ops = 16;
    const kv::KvResult r =
        kv::run_kv_workload(*fresh, *kv::mix_by_name(name), o);
    t.add_row({r.mix, fixed(r.ops_per_sec, 0),
               fixed(static_cast<double>(r.p50_ns) / 1e3, 2),
               fixed(static_cast<double>(r.p99_ns) / 1e3, 2),
               std::to_string(r.scans_completed), std::to_string(r.conf.windows),
               r.invariant_ok && r.conf.all_ok() ? "conformant" : "VIOLATION"});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
