// Campaign quick-start: sweep the whole reproduction catalog across model
// configurations on all cores and write reproducible reports.
//
// Usage: campaign [--threads N] [--serial] [--split] [--rf-chunk N]
//                 [--node-budget N] [--time-budget-ms N]
//                 [--record] [--record-only] [--record-ops N]
//                 [--record-seed N] [--record-monolithic]
//                 [--record-window-min N]
//                 [--kv] [--kv-only] [--kv-ops N] [--kv-seed N] [--kv-keys N]
//                 [--kv-shards N] [--kv-no-sample] [--kv-global-fence]
//                 [--kv-stream]
//                 [--net] [--net-only] [--net-ops N] [--net-rate R]
//                 [--net-reactors r1,r2,...]
//                 [--kv-migrate] [--kv-migrate-only] [--kv-migrate-seed N]
//                 [--kv-migrate-ops N] [--kv-migrate-no-baits]
//                 [--kv-migrate-no-shrink]
//                 [--fuzz N] [--fuzz-only] [--fuzz-seed S] [--fuzz-sched K]
//                 [--fuzz-no-shrink] [--fuzz-repro-dir DIR]
//                 [--fuzz-time-budget-ms N] [--fuzz-threads N]
//                 [--fuzz-stmts N] [--json PATH] [--csv PATH]
//
// --serial forces the single-threaded reference mode; --split additionally
// shards each program's candidate space (frontier splitting).  Reports are
// byte-identical between modes as long as no budget is hit.
//
// --record adds the recorded-execution conformance grid: every container
// workload runs on every registered STM backend at several thread counts,
// the recorded execution is assembled into a model trace and judged by the
// race/opacity checkers; --record-only skips the litmus catalog.  Judgments
// use the fence-bounded windowed engine by default; --record-monolithic
// forces the single-context reference checker.
//
// --kv adds the KV workload conformance grid: every standard mix (YCSB
// A/B/C, priv_heavy, pub_heavy) of the sharded transactional KV engine runs
// on every registered backend at several thread counts with sampled runtime
// conformance on — recorded rounds are judged by the model layer, and a
// non-conformant window or failed store audit counts as a mismatch.
// --kv-only skips the litmus catalog; --kv-no-sample turns the sampling off
// (perf-only rows); --kv-global-fence disables per-shard quiescence domains
// (whole-store fences — the A/B baseline, same verdict signature).
// --kv-stream replaces sampling with the always-on streaming pipeline:
// every round is captured through lock-free per-thread rings and judged
// concurrently with the run; a ring overflow poisons the row.
//
// --net adds the loopback serving smoke grid: every registered backend runs
// the binary-protocol front end per batching mode (on and off) and per
// reactor count in --net-reactors (default 1,2) — under open-loop load on
// the hot mix, with per-reactor streaming conformance judging the served
// traffic; any non-conformant segment, ring drop, bad frame or malformed
// value counts as a mismatch.  --net-only skips the litmus catalog.
//
// --kv-migrate adds the live-migration protocol grid: every backend runs
// every migration kind (split / move / merge) as a recorded protocol
// sequence under mixed traffic at several logical thread counts, judged by
// the model layer plus a transactional key audit — and, unless
// --kv-migrate-no-baits, every deliberately broken bait variant
// (skip_source_fence, publish_before_copy, stale_route) of every kind,
// which MUST each trip the oracle and shrink to a minimal reproducer (a
// silent bait is a detection gap and counts as a mismatch).  The oracle is
// single-OS-thread deterministic, so the grid's verdict signature is
// byte-stable across runs and modes.  --kv-migrate-only skips the litmus
// catalog; bait reproducers land in --fuzz-repro-dir when given.
//
// --fuzz N adds the differential fuzz grid: N random litmus programs (seeded
// by --fuzz-seed, byte-reproducible) run on every registered backend under
// --fuzz-sched schedule-perturbation seeds each; recorded executions are
// judged against the model and violations are auto-shrunk to minimal
// reproducers (written to --fuzz-repro-dir when given).  --fuzz-only skips
// the litmus catalog; the exit code covers fuzz violations like any other
// mismatch.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "substrate/format.hpp"

int main(int argc, char** argv) {
  using namespace mtx;
  campaign::CampaignOptions opts;
  std::string json_path, csv_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto count = [&](const char* flag) -> std::uint64_t {
      const long long v = std::atoll(next(flag));
      if (v < 0) {
        std::fprintf(stderr, "%s must be >= 0\n", flag);
        std::exit(2);
      }
      return static_cast<std::uint64_t>(v);
    };
    if (std::strcmp(argv[i], "--threads") == 0)
      opts.threads = static_cast<std::size_t>(count("--threads"));
    else if (std::strcmp(argv[i], "--serial") == 0)
      opts.threads = 1;
    else if (std::strcmp(argv[i], "--split") == 0)
      opts.split_programs = true;
    else if (std::strcmp(argv[i], "--rf-chunk") == 0)
      opts.rf_chunk = count("--rf-chunk");
    else if (std::strcmp(argv[i], "--node-budget") == 0)
      opts.node_budget = count("--node-budget");
    else if (std::strcmp(argv[i], "--time-budget-ms") == 0)
      opts.time_budget_ms = count("--time-budget-ms");
    else if (std::strcmp(argv[i], "--record") == 0)
      opts.record_jobs = true;
    else if (std::strcmp(argv[i], "--record-only") == 0) {
      opts.record_jobs = true;
      opts.litmus_jobs = false;
    } else if (std::strcmp(argv[i], "--record-ops") == 0)
      opts.record_ops = static_cast<int>(count("--record-ops"));
    else if (std::strcmp(argv[i], "--record-seed") == 0)
      opts.record_seed = count("--record-seed");
    else if (std::strcmp(argv[i], "--record-monolithic") == 0)
      opts.record_windowed = false;
    else if (std::strcmp(argv[i], "--record-window-min") == 0)
      opts.record_window_min = static_cast<std::size_t>(count("--record-window-min"));
    else if (std::strcmp(argv[i], "--kv") == 0)
      opts.kv_jobs = true;
    else if (std::strcmp(argv[i], "--kv-only") == 0) {
      opts.kv_jobs = true;
      opts.litmus_jobs = false;
    } else if (std::strcmp(argv[i], "--kv-ops") == 0)
      opts.kv_ops = count("--kv-ops");
    else if (std::strcmp(argv[i], "--kv-seed") == 0)
      opts.kv_seed = count("--kv-seed");
    else if (std::strcmp(argv[i], "--kv-keys") == 0)
      opts.kv_keys = static_cast<std::size_t>(count("--kv-keys"));
    else if (std::strcmp(argv[i], "--kv-shards") == 0)
      opts.kv_shards = static_cast<std::size_t>(count("--kv-shards"));
    else if (std::strcmp(argv[i], "--kv-no-sample") == 0)
      opts.kv_sample_every = 0;
    else if (std::strcmp(argv[i], "--kv-global-fence") == 0)
      opts.kv_scoped_fences = false;
    else if (std::strcmp(argv[i], "--kv-stream") == 0)
      opts.kv_stream = true;
    else if (std::strcmp(argv[i], "--kv-stream-sample") == 0)
      opts.kv_stream_sample = static_cast<std::size_t>(count("--kv-stream-sample"));
    else if (std::strcmp(argv[i], "--net") == 0)
      opts.net_jobs = true;
    else if (std::strcmp(argv[i], "--net-only") == 0) {
      opts.net_jobs = true;
      opts.litmus_jobs = false;
    } else if (std::strcmp(argv[i], "--net-ops") == 0)
      opts.net_ops = count("--net-ops");
    else if (std::strcmp(argv[i], "--net-rate") == 0)
      opts.net_rate = static_cast<double>(count("--net-rate"));
    else if (std::strcmp(argv[i], "--net-reactors") == 0) {
      opts.net_reactors.clear();
      const std::string v = next("--net-reactors");
      std::size_t pos = 0;
      while (pos < v.size()) {
        const std::size_t comma = v.find(',', pos);
        const std::size_t end = comma == std::string::npos ? v.size() : comma;
        if (end > pos)
          opts.net_reactors.push_back(static_cast<std::size_t>(
              std::atoll(v.substr(pos, end - pos).c_str())));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    else if (std::strcmp(argv[i], "--kv-migrate") == 0)
      opts.migrate_jobs = true;
    else if (std::strcmp(argv[i], "--kv-migrate-only") == 0) {
      opts.migrate_jobs = true;
      opts.litmus_jobs = false;
    } else if (std::strcmp(argv[i], "--kv-migrate-seed") == 0)
      opts.migrate_seed = count("--kv-migrate-seed");
    else if (std::strcmp(argv[i], "--kv-migrate-ops") == 0)
      opts.migrate_ops = count("--kv-migrate-ops");
    else if (std::strcmp(argv[i], "--kv-migrate-no-baits") == 0)
      opts.migrate_baits = false;
    else if (std::strcmp(argv[i], "--kv-migrate-no-shrink") == 0)
      opts.migrate_shrink = false;
    else if (std::strcmp(argv[i], "--fuzz") == 0)
      opts.fuzz_count = static_cast<int>(count("--fuzz"));
    else if (std::strcmp(argv[i], "--fuzz-only") == 0)
      opts.litmus_jobs = false;
    else if (std::strcmp(argv[i], "--fuzz-seed") == 0)
      opts.fuzz_seed = count("--fuzz-seed");
    else if (std::strcmp(argv[i], "--fuzz-sched") == 0)
      opts.fuzz_sched_rounds = static_cast<int>(count("--fuzz-sched"));
    else if (std::strcmp(argv[i], "--fuzz-no-shrink") == 0)
      opts.fuzz_shrink = false;
    else if (std::strcmp(argv[i], "--fuzz-repro-dir") == 0)
      opts.fuzz_repro_dir = next("--fuzz-repro-dir");
    else if (std::strcmp(argv[i], "--fuzz-time-budget-ms") == 0)
      opts.fuzz_time_budget_ms = count("--fuzz-time-budget-ms");
    else if (std::strcmp(argv[i], "--fuzz-threads") == 0)
      opts.fuzz_params.threads = static_cast<int>(count("--fuzz-threads"));
    else if (std::strcmp(argv[i], "--fuzz-stmts") == 0)
      opts.fuzz_params.stmts_per_thread = static_cast<int>(count("--fuzz-stmts"));
    else if (std::strcmp(argv[i], "--json") == 0)
      json_path = next("--json");
    else if (std::strcmp(argv[i], "--csv") == 0)
      csv_path = next("--csv");
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const campaign::CampaignResult r = campaign::run_campaign(opts);

  Table table({"id", "model", "paper says", "measured", "ok", "ms"});
  for (const campaign::JobResult& j : r.jobs) {
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.1f", j.millis);
    table.add_row({j.row.id, j.row.config,
                   j.row.expected_allowed ? "Allowed" : "Forbidden",
                   j.row.actual_allowed ? "Allowed" : "Forbidden",
                   j.row.matches() ? "yes" : "MISMATCH", ms});
  }
  if (!r.jobs.empty()) std::printf("%s\n", table.render().c_str());

  if (!r.recorded.empty()) {
    Table rec({"workload", "backend", "threads", "verdict", "races", "opaque",
               "txns", "ms"});
    for (const campaign::RecordRow& row : r.recorded) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.1f", row.millis);
      // Opacity shown at the backend's declared level (committed-only for
      // the eager zombie-prone class).
      const bool opq = row.zombie_free ? row.opaque : row.opaque_committed;
      rec.add_row({row.workload, row.backend, std::to_string(row.threads),
                   row.ok() ? "conformant" : "VIOLATION",
                   std::to_string(row.l_races), opq ? "yes" : "NO",
                   std::to_string(row.committed + row.aborted), ms});
    }
    std::printf("%s\n", rec.render().c_str());
  }

  if (!r.kv.empty()) {
    Table kvt({"mix", "backend", "threads", "verdict", "ops/s", "p50us",
               "p99us", "windows", "ms"});
    for (const campaign::KvRow& row : r.kv) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.1f", row.millis);
      kvt.add_row({row.mix, row.backend, std::to_string(row.threads),
                   row.ok() ? "conformant" : "VIOLATION",
                   fixed(row.ops_per_sec, 0),
                   fixed(static_cast<double>(row.p50_ns) / 1e3, 1),
                   fixed(static_cast<double>(row.p99_ns) / 1e3, 1),
                   std::to_string(row.windows), ms});
    }
    std::printf("%s\n", kvt.render().c_str());
  }

  if (!r.net.empty()) {
    Table nt({"backend", "mode", "reactors", "verdict", "ops", "txns",
              "handoffs", "ops/s", "p99us", "segments", "ms"});
    for (const campaign::NetRow& row : r.net) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.1f", row.millis);
      nt.add_row({row.backend, row.batched ? "batched" : "unbatched",
                  std::to_string(row.reactors),
                  row.ok() ? "conformant" : "VIOLATION",
                  std::to_string(row.completed),
                  std::to_string(row.transactions),
                  std::to_string(row.handoffs),
                  fixed(row.achieved_per_sec, 0),
                  fixed(static_cast<double>(row.p99_ns) / 1e3, 1),
                  std::to_string(row.segments), ms});
    }
    std::printf("%s\n", nt.render().c_str());
  }

  if (!r.migrate.empty()) {
    Table mg({"backend", "kind", "bait", "threads", "verdict", "keys moved",
              "races", "shrunk t/o/k", "ms"});
    for (const fuzz::KvProtoRow& row : r.migrate) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.1f", row.millis);
      // Bait rows are SUPPOSED to violate: caught = the bait tripped the
      // oracle and shrank to a reproducer; MISSED = it slipped through.
      const std::string verdict =
          row.baited()
              ? (row.ok() ? "caught(" + row.failure + ")" : "MISSED")
              : (row.ok() ? "conformant" : "VIOLATION(" + row.failure + ")");
      const std::string shrunk =
          row.violation ? std::to_string(row.shrunk_threads) + "/" +
                              std::to_string(row.shrunk_ops) + "/" +
                              std::to_string(row.shrunk_keys)
                        : "-";
      mg.add_row({row.backend, row.kind, row.bait,
                  std::to_string(row.threads), verdict,
                  std::to_string(row.keys_moved),
                  std::to_string(row.l_races), shrunk, ms});
    }
    std::printf("%s\n", mg.render().c_str());
    for (const fuzz::KvProtoRow& row : r.migrate)
      if (!row.repro.empty())
        std::printf("migration reproducer (%s %s on %s):\n%s\n",
                    row.kind.c_str(), row.bait.c_str(), row.backend.c_str(),
                    row.repro.c_str());
  }

  if (!r.fuzzed.empty()) {
    Table fz({"program", "backend", "verdict", "model outcomes", "races",
              "runs", "ms"});
    for (const fuzz::FuzzRow& row : r.fuzzed) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.1f", row.millis);
      fz.add_row({row.id, row.backend,
                  row.skipped ? "skipped"
                              : row.ok() ? "conformant"
                                         : "DIVERGENT(" + row.failure + ")",
                  std::to_string(row.model_outcomes),
                  std::to_string(row.l_races), std::to_string(row.runs), ms});
    }
    std::printf("%s\n", fz.render().c_str());
    for (const fuzz::FuzzRow& row : r.fuzzed)
      if (!row.repro.empty())
        std::printf("shrunk reproducer (%s on %s):\n%s\n", row.id.c_str(),
                    row.backend.c_str(), row.repro.c_str());
  }

  std::printf("rows: %zu  recorded: %zu  kv: %zu  net: %zu  migrate: %zu  fuzzed: %zu  mismatches: %zu  threads: %zu  shards: %zu  wall: %.1f ms\n",
              r.jobs.size(), r.recorded.size(), r.kv.size(), r.net.size(),
              r.migrate.size(), r.fuzzed.size(), r.mismatches, r.threads_used,
              r.shard_count, r.wall_ms);

  if (!json_path.empty() && !campaign::write_file(json_path, campaign::to_json(r))) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 2;
  }
  if (!csv_path.empty() && !campaign::write_file(csv_path, campaign::to_csv(r))) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 2;
  }
  return r.mismatches == 0 ? 0 : 1;
}
